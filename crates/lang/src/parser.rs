//! Recursive-descent parser for SDL source.
//!
//! ## Grammar (EBNF-ish)
//!
//! ```text
//! program      := (process_def | init_block)*
//! process_def  := "process" NAME "(" [params] ")" "{"
//!                   ["import" "{" view_rule* "}"]
//!                   ["export" "{" view_rule* "}"]
//!                   (stmt* | "behavior" "{" stmt* "}")
//!                 "}"
//! view_rule    := ["forall" names ":"] [cond ("," cond)* "=>"] pattern ";"
//! cond         := pattern | NAME "(" exprs ")"
//! init_block   := "init" "{" (pattern ";" | "spawn" NAME "(" exprs ")" ";")* "}"
//!
//! stmt         := txn (";" | &stop)
//!               | ("select" | "loop" | "par") "{" branch ("|" branch)* "}" [";"]
//! branch       := txn [";" stmt*]
//!
//! txn          := [("exists" | "forall") names ":"] [atoms] [":" expr] tag [actions]
//! atoms        := atom ("," atom)*
//! atom         := ["not"] pattern ["!"] | ["not"] NAME "(" exprs ")"
//! tag          := "->" | "=>" | "@>"
//! actions      := action ("," action)*
//! action       := "<" exprs ">" | "let" NAME "=" expr
//!               | "spawn" NAME "(" exprs ")" | "skip" | "exit" | "abort"
//!
//! pattern      := "<" field ("," field)* ">" | "<" ">"
//! field        := "*" | add_expr          // comparisons need parentheses
//! ```
//!
//! Names are classified later (quantified variable / process constant /
//! atom literal) by the `sdl-core` compiler.

use sdl_tuple::Value;

use crate::ast::*;
use crate::error::{ParseError, Pos};
use crate::lexer::{lex, Spanned, Tok};

/// Parses a complete SDL program.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Examples
///
/// ```
/// let src = r#"
///     process Find(P) {
///         select {
///             exists v : <P, v> -> <found, P, v>
///           | not <P, v2> -> <found, P, not_found>
///         }
///     }
///     init { <temperature, 21>; spawn Find(temperature); }
/// "#;
/// let prog = sdl_lang::parse_program(src).unwrap();
/// assert_eq!(prog.processes.len(), 1);
/// assert_eq!(prog.init.tuples.len(), 1);
/// assert_eq!(prog.init.spawns.len(), 1);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(src)?;
    p.program()
}

/// Parses a single transaction (useful in tests and the REPL-style tools).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_transaction(src: &str) -> Result<Transaction, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.txn()?;
    p.expect(&Tok::Eof)?;
    Ok(t)
}

/// Parses a sequence of statements (a process body fragment).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_stmts(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let mut p = Parser::new(src)?;
    let stmts = p.seq(&[Tok::Eof])?;
    p.expect(&Tok::Eof)?;
    Ok(stmts)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            i: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i < self.toks.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.pos())
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ---------------- program structure ----------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Process => prog.processes.push(self.process_def()?),
                Tok::Init => self.init_block(&mut prog.init)?,
                other => {
                    return Err(self.err(format!("expected `process` or `init`, found {other}")))
                }
            }
        }
        Ok(prog)
    }

    fn process_def(&mut self) -> Result<ProcessDef, ParseError> {
        self.expect(&Tok::Process)?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::LBrace)?;

        let mut view = ViewDef::full();
        if self.eat(&Tok::Import) {
            view.import = Some(self.view_rules()?);
        }
        if self.eat(&Tok::Export) {
            view.export = Some(self.view_rules()?);
        }

        // Optional `behavior { … }` wrapper.
        let body = if matches!(self.peek(), Tok::Ident(w) if w == "behavior")
            && self.peek2() == &Tok::LBrace
        {
            self.bump();
            self.bump();
            let b = self.seq(&[Tok::RBrace])?;
            self.expect(&Tok::RBrace)?;
            b
        } else {
            self.seq(&[Tok::RBrace])?
        };
        self.expect(&Tok::RBrace)?;
        Ok(ProcessDef {
            name,
            params,
            view,
            body,
        })
    }

    fn view_rules(&mut self) -> Result<Vec<ViewRule>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut rules = Vec::new();
        while self.peek() != &Tok::RBrace {
            rules.push(self.view_rule()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(rules)
    }

    fn view_rule(&mut self) -> Result<ViewRule, ParseError> {
        let mut vars = Vec::new();
        if self.eat(&Tok::Forall) {
            loop {
                vars.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::Colon)?;
        }
        // Items up to `=>` are conditions; the final pattern follows.
        let mut items: Vec<CondAtom> = Vec::new();
        loop {
            let item = if self.peek() == &Tok::Lt {
                CondAtom::Tuple(self.pattern()?)
            } else if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::LParen {
                let name = self.ident()?;
                self.expect(&Tok::LParen)?;
                let args = self.expr_list(&Tok::RParen)?;
                self.expect(&Tok::RParen)?;
                CondAtom::Pred(name, args)
            } else {
                return Err(self.err(format!(
                    "expected a tuple pattern or predicate in view rule, found {}",
                    self.peek()
                )));
            };
            items.push(item);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let rule = if self.eat(&Tok::DArrow) {
            let pattern = self.pattern()?;
            ViewRule {
                vars,
                conditions: items,
                pattern,
            }
        } else {
            if items.len() != 1 {
                return Err(self.err("unconditional view rule must be a single pattern"));
            }
            match items.pop().expect("one item") {
                CondAtom::Tuple(p) => ViewRule {
                    vars,
                    conditions: Vec::new(),
                    pattern: p,
                },
                CondAtom::Pred(..) => return Err(self.err("view rule cannot be a bare predicate")),
            }
        };
        self.expect(&Tok::Semi)?;
        Ok(rule)
    }

    fn init_block(&mut self, init: &mut InitBlock) -> Result<(), ParseError> {
        self.expect(&Tok::Init)?;
        self.expect(&Tok::LBrace)?;
        while self.peek() != &Tok::RBrace {
            match self.peek() {
                Tok::Lt => {
                    let fields = self.tuple_exprs()?;
                    init.tuples.push(fields);
                }
                Tok::Spawn => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(&Tok::LParen)?;
                    let args = self.expr_list(&Tok::RParen)?;
                    self.expect(&Tok::RParen)?;
                    init.spawns.push(SpawnSpec { name, args });
                }
                other => {
                    return Err(self.err(format!(
                        "expected a tuple or `spawn` in init block, found {other}"
                    )))
                }
            }
            self.expect(&Tok::Semi)?;
        }
        self.expect(&Tok::RBrace)?;
        Ok(())
    }

    // ---------------- statements ----------------

    fn seq(&mut self, stop: &[Tok]) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !stop.contains(self.peek()) {
            out.push(self.stmt(stop)?);
        }
        Ok(out)
    }

    fn stmt(&mut self, stop: &[Tok]) -> Result<Stmt, ParseError> {
        match self.peek() {
            Tok::Select => {
                self.bump();
                let b = self.branches()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Select(b))
            }
            Tok::Loop => {
                self.bump();
                let b = self.branches()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Repeat(b))
            }
            Tok::Par => {
                self.bump();
                let b = self.branches()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Replicate(b))
            }
            _ => {
                let t = self.txn()?;
                if !self.eat(&Tok::Semi) && !stop.contains(self.peek()) {
                    return Err(self.err(format!(
                        "expected `;` after transaction, found {}",
                        self.peek()
                    )));
                }
                Ok(Stmt::Txn(t))
            }
        }
    }

    fn branches(&mut self) -> Result<Vec<GuardedSeq>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        loop {
            let guard = self.txn()?;
            let rest = if self.eat(&Tok::Semi) {
                self.seq(&[Tok::Pipe, Tok::RBrace])?
            } else {
                Vec::new()
            };
            out.push(GuardedSeq { guard, rest });
            if !self.eat(&Tok::Pipe) {
                break;
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(out)
    }

    // ---------------- transactions ----------------

    fn starts_atom(&self) -> bool {
        match self.peek() {
            Tok::Lt => true,
            Tok::Not => true,
            Tok::Ident(_) => self.peek2() == &Tok::LParen,
            _ => false,
        }
    }

    fn txn(&mut self) -> Result<Transaction, ParseError> {
        let mut t = Transaction::default();
        match self.peek() {
            Tok::Exists | Tok::Forall => {
                t.quant = if self.bump() == Tok::Forall {
                    Quant::Forall
                } else {
                    Quant::Exists
                };
                loop {
                    t.vars.push(self.ident()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Colon)?;
            }
            _ => {}
        }

        let at_tag = |p: &Parser| matches!(p.peek(), Tok::Arrow | Tok::DArrow | Tok::CArrow);

        if !at_tag(self) {
            // A predicate-call atom (`neighbor(p, r)`) is syntactically a
            // prefix of a test expression (`neighbor(p, r) and x > 0`), so
            // a leading call is parsed speculatively: it is an atom only
            // if what follows continues an atom list.
            let leading_call_is_atom =
                if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::LParen {
                    let save = self.i;
                    let ok = self.atom().is_ok()
                        && matches!(
                            self.peek(),
                            Tok::Comma | Tok::Colon | Tok::Arrow | Tok::DArrow | Tok::CArrow
                        );
                    self.i = save;
                    ok
                } else {
                    self.starts_atom()
                };
            if leading_call_is_atom {
                loop {
                    t.atoms.push(self.atom()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    // After the first element the list is committed to
                    // atoms; tests follow the `:` separator.
                    if !self.starts_atom() {
                        return Err(self.err(format!(
                            "expected a query atom after `,`, found {}",
                            self.peek()
                        )));
                    }
                }
                if self.eat(&Tok::Colon) {
                    t.test = Some(self.expr()?);
                }
            } else {
                // No atoms: the whole query is a test expression.
                t.test = Some(self.expr()?);
            }
        }

        t.kind = match self.bump() {
            Tok::Arrow => TxnKind::Immediate,
            Tok::DArrow => TxnKind::Delayed,
            Tok::CArrow => TxnKind::Consensus,
            other => {
                return Err(ParseError::new(
                    format!("expected `->`, `=>`, or `@>`, found {other}"),
                    self.toks[self.i.saturating_sub(1)].pos,
                ))
            }
        };

        if !matches!(self.peek(), Tok::Semi | Tok::Pipe | Tok::RBrace | Tok::Eof) {
            loop {
                t.actions.push(self.action()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        Ok(t)
    }

    fn atom(&mut self) -> Result<TxnAtom, ParseError> {
        if self.eat(&Tok::Not) {
            if self.peek() == &Tok::Lt {
                let p = self.pattern()?;
                if self.peek() == &Tok::Bang {
                    return Err(self.err("a negated pattern cannot carry a retraction tag"));
                }
                return Ok(TxnAtom::Neg(p));
            }
            let name = self.ident()?;
            self.expect(&Tok::LParen)?;
            let args = self.expr_list(&Tok::RParen)?;
            self.expect(&Tok::RParen)?;
            return Ok(TxnAtom::Pred {
                name,
                args,
                negated: true,
            });
        }
        if self.peek() == &Tok::Lt {
            let pattern = self.pattern()?;
            let retract = self.eat(&Tok::Bang);
            return Ok(TxnAtom::Tuple { pattern, retract });
        }
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let args = self.expr_list(&Tok::RParen)?;
        self.expect(&Tok::RParen)?;
        Ok(TxnAtom::Pred {
            name,
            args,
            negated: false,
        })
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        match self.peek().clone() {
            Tok::Lt => Ok(Action::Assert(self.tuple_exprs()?)),
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::Assign)?;
                Ok(Action::Let(name, self.expr()?))
            }
            Tok::Spawn => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::LParen)?;
                let args = self.expr_list(&Tok::RParen)?;
                self.expect(&Tok::RParen)?;
                Ok(Action::Spawn(name, args))
            }
            Tok::Skip => {
                self.bump();
                Ok(Action::Skip)
            }
            Tok::Exit => {
                self.bump();
                Ok(Action::Exit)
            }
            Tok::Abort => {
                self.bump();
                Ok(Action::Abort)
            }
            other => Err(self.err(format!(
                "expected an action (tuple, let, spawn, skip, exit, abort), found {other}"
            ))),
        }
    }

    // ---------------- patterns & tuples ----------------

    fn pattern(&mut self) -> Result<PatternExpr, ParseError> {
        self.expect(&Tok::Lt)?;
        let mut fields = Vec::new();
        if self.peek() != &Tok::Gt {
            loop {
                if self.peek() == &Tok::Star && matches!(self.peek2(), Tok::Comma | Tok::Gt) {
                    self.bump();
                    fields.push(FieldExpr::Any);
                } else {
                    fields.push(FieldExpr::Expr(self.add_expr()?));
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::Gt)?;
        Ok(PatternExpr::new(fields))
    }

    /// An assertion tuple: like a pattern but wildcards are not allowed.
    fn tuple_exprs(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Tok::Lt)?;
        let mut fields = Vec::new();
        if self.peek() != &Tok::Gt {
            loop {
                if self.peek() == &Tok::Star && matches!(self.peek2(), Tok::Comma | Tok::Gt) {
                    return Err(self.err("wildcard `*` is not allowed in an asserted tuple"));
                }
                fields.push(self.add_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::Gt)?;
        Ok(fields)
    }

    fn expr_list(&mut self, terminator: &Tok) -> Result<Vec<Expr>, ParseError> {
        let mut out = Vec::new();
        if self.peek() != terminator {
            loop {
                out.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        Ok(out)
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq | Tok::Assign => BinOp::Eq,
            Tok::NeTok => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::LeTok => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::GeTok => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Mod => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat(&Tok::Not) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.pow_expr()
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let base = self.primary()?;
        if self.eat(&Tok::Caret) {
            // Right-associative: 2^3^2 = 2^(3^2).
            let exp = self.unary_expr()?;
            return Ok(Expr::bin(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Lit(Value::Int(i)))
            }
            Tok::Float(f) => {
                self.bump();
                Ok(Expr::Lit(Value::Float(f)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::str(&s)))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(false)))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let args = self.expr_list(&Tok::RParen)?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Name(name))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_transaction() {
        // The paper's: ∃α: <year, α>↑ : α > 87 → let N = α, <found, α>
        let t =
            parse_transaction("exists a : <year, a>! : a > 87 -> let N = a, <found, a>").unwrap();
        assert_eq!(t.quant, Quant::Exists);
        assert_eq!(t.vars, vec!["a"]);
        assert_eq!(t.atoms.len(), 1);
        assert!(matches!(&t.atoms[0], TxnAtom::Tuple { retract: true, .. }));
        assert!(t.test.is_some());
        assert_eq!(t.kind, TxnKind::Immediate);
        assert_eq!(t.actions.len(), 2);
        assert!(matches!(&t.actions[0], Action::Let(n, _) if n == "N"));
        assert!(matches!(&t.actions[1], Action::Assert(f) if f.len() == 2));
    }

    #[test]
    fn parse_unicode_transaction() {
        let t = parse_transaction("∃ a : <year, a>↑ : a > 87 ⇒ <new_year>").unwrap();
        assert_eq!(t.kind, TxnKind::Delayed);
        assert!(matches!(&t.atoms[0], TxnAtom::Tuple { retract: true, .. }));
    }

    #[test]
    fn parse_consensus_and_test_only() {
        let t = parse_transaction("k mod 2^(j+1) == 0 @> spawn Sum1(k, j+1)").unwrap();
        assert_eq!(t.kind, TxnKind::Consensus);
        assert!(t.atoms.is_empty());
        assert!(t.test.is_some());
        assert!(matches!(&t.actions[0], Action::Spawn(n, a) if n == "Sum1" && a.len() == 2));
    }

    #[test]
    fn parse_negation_and_predicates() {
        let t = parse_transaction(
            "exists p1, p2 : neighbor(p1, p2), <label, p1>, not <done, p2> -> skip",
        )
        .unwrap();
        assert_eq!(t.atoms.len(), 3);
        assert!(matches!(&t.atoms[0], TxnAtom::Pred { negated: false, .. }));
        assert!(matches!(&t.atoms[2], TxnAtom::Neg(_)));
        let t2 = parse_transaction("exists p : not odd(p) -> skip").unwrap();
        assert!(matches!(&t2.atoms[0], TxnAtom::Pred { negated: true, .. }));
    }

    #[test]
    fn negated_pattern_with_retract_is_an_error() {
        assert!(parse_transaction("not <a>! -> skip").is_err());
    }

    #[test]
    fn parse_wildcards_and_exprs_in_patterns() {
        let t = parse_transaction("exists a : <k - 2^(j-1), a, *> -> skip").unwrap();
        match &t.atoms[0] {
            TxnAtom::Tuple { pattern, .. } => {
                assert_eq!(pattern.fields.len(), 3);
                assert!(matches!(pattern.fields[0], FieldExpr::Expr(_)));
                assert!(matches!(pattern.fields[2], FieldExpr::Any));
            }
            other => panic!("unexpected atom {other:?}"),
        }
    }

    #[test]
    fn wildcard_in_assertion_is_an_error() {
        assert!(parse_transaction("-> <a, *>").is_err());
    }

    #[test]
    fn parse_forall() {
        let t = parse_transaction("forall p, l : <label, p, l>! => skip").unwrap();
        assert_eq!(t.quant, Quant::Forall);
        assert_eq!(t.vars.len(), 2);
    }

    #[test]
    fn parse_empty_query_and_actions() {
        let t = parse_transaction("-> <go>").unwrap();
        assert!(t.atoms.is_empty());
        assert!(t.test.is_none());
        let t2 = parse_transaction("<year, 87> ->").unwrap();
        assert!(t2.actions.is_empty());
        assert_eq!(t2.atoms.len(), 1);
    }

    #[test]
    fn parse_select_loop_par() {
        let stmts = parse_stmts(
            "select { <a>! -> skip | true -> exit } loop { <b>! -> <c> } par { <d>! -> }",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        match &stmts[0] {
            Stmt::Select(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected select, got {other:?}"),
        }
        assert!(matches!(&stmts[1], Stmt::Repeat(b) if b.len() == 1));
        assert!(matches!(&stmts[2], Stmt::Replicate(b) if b.len() == 1));
    }

    #[test]
    fn parse_branch_with_sequence() {
        let stmts = parse_stmts("select { <a>! -> skip; <b> -> <c>; | true -> } ").unwrap();
        match &stmts[0] {
            Stmt::Select(branches) => {
                assert_eq!(branches[0].rest.len(), 1);
                assert!(branches[1].rest.is_empty());
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parse_process_with_view() {
        let src = r#"
            process Sort(this, next) {
                import {
                    <this, *, *, *>;
                    <next, *, *, *>;
                }
                export {
                    <this, *, *, *>;
                    <next, *, *, *>;
                }
                loop {
                    exists n1, v1, n2, v2, s :
                        <this, n1, v1, next>!, <next, n2, v2, s>! : n1 > n2
                        -> <this, n2, v2, next>, <next, n1, v1, s>
                }
            }
        "#;
        let prog = parse_program(src).unwrap();
        let def = prog.process("Sort").unwrap();
        assert_eq!(def.params, vec!["this", "next"]);
        let import = def.view.import.as_ref().unwrap();
        assert_eq!(import.len(), 2);
        assert!(import[0].conditions.is_empty());
        assert_eq!(def.body.len(), 1);
    }

    #[test]
    fn parse_conditional_view_rule() {
        let src = r#"
            process Label(r, t) {
                import {
                    forall p, l : neighbor(p, r), <threshold, p, t> => <label, p, l>;
                    forall p : neighbor(p, r) => <threshold, p, t>;
                }
                -> skip;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let def = prog.process("Label").unwrap();
        let rules = def.view.import.as_ref().unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].vars, vec!["p", "l"]);
        assert_eq!(rules[0].conditions.len(), 2);
        assert!(matches!(&rules[0].conditions[0], CondAtom::Pred(n, _) if n == "neighbor"));
        assert!(matches!(&rules[0].conditions[1], CondAtom::Tuple(_)));
    }

    #[test]
    fn parse_init_block() {
        let prog =
            parse_program("init { <1, 10>; <2, 20>; spawn Sum3(); } process Sum3() { -> skip; }")
                .unwrap();
        assert_eq!(prog.init.tuples.len(), 2);
        assert_eq!(prog.init.spawns.len(), 1);
    }

    #[test]
    fn parse_behavior_wrapper() {
        let prog = parse_program("process P() { behavior { -> skip; -> skip; } }").unwrap();
        assert_eq!(prog.process("P").unwrap().body.len(), 2);
    }

    #[test]
    fn expression_precedence() {
        let t = parse_transaction("1 + 2 * 3 == 7 and 2^3^2 == 512 -> skip").unwrap();
        let test = t.test.unwrap();
        // Just check it evaluates correctly.
        use crate::expr::{eval_test, EmptyContext};
        assert!(eval_test(&test, &EmptyContext));
    }

    #[test]
    fn equals_sign_is_equality_in_tests() {
        let t = parse_transaction("next = nil -> exit").unwrap();
        assert!(matches!(t.test.unwrap(), Expr::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn parenthesised_comparison_inside_field() {
        let t = parse_transaction("exists a : <flag, (a < 3)> -> skip").unwrap();
        match &t.atoms[0] {
            TxnAtom::Tuple { pattern, .. } => {
                assert!(matches!(
                    &pattern.fields[1],
                    FieldExpr::Expr(Expr::Binary(BinOp::Lt, _, _))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_program("process P( { }").unwrap_err();
        assert_eq!(e.pos.line, 1);
        assert!(e.to_string().contains("expected"));
    }

    #[test]
    fn error_on_garbage_top_level() {
        assert!(parse_program("banana").is_err());
    }

    #[test]
    fn error_on_missing_tag() {
        assert!(parse_transaction("<a> skip").is_err());
    }

    #[test]
    fn trailing_comma_in_atoms_is_an_error() {
        assert!(parse_transaction("exists a : <x, a>, -> skip").is_err());
    }

    #[test]
    fn empty_tuple_pattern() {
        let t = parse_transaction("<> -> skip").unwrap();
        match &t.atoms[0] {
            TxnAtom::Tuple { pattern, .. } => assert!(pattern.fields.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn abort_action() {
        let t = parse_transaction("<poison>! => abort").unwrap();
        assert!(matches!(t.actions[0], Action::Abort));
        assert_eq!(t.kind, TxnKind::Delayed);
    }
}
