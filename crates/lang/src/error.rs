//! Lexing and parsing errors.

use std::fmt;

/// A position in SDL source text (1-based line and column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced while lexing or parsing SDL source.
///
/// # Examples
///
/// ```
/// use sdl_lang::parse_program;
/// let err = parse_program("process {").unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where it went wrong.
    pub pos: Pos,
}

impl ParseError {
    /// Creates an error at `pos`.
    pub fn new(message: impl Into<String>, pos: Pos) -> ParseError {
        ParseError {
            message: message.into(),
            pos,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("expected `)`", Pos { line: 3, col: 7 });
        assert_eq!(e.to_string(), "parse error at 3:7: expected `)`");
    }

    #[test]
    fn pos_ordering() {
        let a = Pos { line: 1, col: 9 };
        let b = Pos { line: 2, col: 1 };
        assert!(a < b);
    }
}
