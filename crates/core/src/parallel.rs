//! Multithreaded optimistic executor.
//!
//! Real-parallelism counterpart to [`Runtime::run_rounds`]'s logical
//! parallelism: worker threads execute processes concurrently against a
//! shared dataspace. A transaction **evaluates** under read locks
//! (windows, joins, tests — the expensive part), then **commits** under
//! write locks after re-validating its read/retract/negation/forall
//! evidence; a failed validation retries. This is classic optimistic
//! concurrency control, sound because [`crate::txn::Pending::validate`]
//! re-establishes exactly the facts the evaluation relied on.
//!
//! ## Sharding
//!
//! The store is a [`ShardedDataspace`]: tuple instances are partitioned
//! by `(functor, arity)` into independently locked shards. Each attempt
//! computes a **footprint** — the set of shards its patterns, instance
//! ids, and asserted tuples route to — and locks only those, so
//! transactions over disjoint relations evaluate *and commit* truly
//! concurrently instead of serialising on one store-wide write lock.
//! Lock acquisition is always in ascending shard order and no thread
//! holds one footprint while acquiring another, so there is no deadlock.
//! Unroutable patterns (variable heads), restricted import views, and
//! export rules fall back to the full footprint — correct, just
//! unsharded for that attempt. With one shard this executor behaves
//! bit-for-bit like the previous single-lock design.
//!
//! Blocked processes park on per-shard lists keyed by the same
//! partition, so a commit only scans the lists of shards it changed. A
//! global commit epoch (incremented after every commit's locks drop)
//! closes the park/wake race: a parker re-checks the epoch after
//! inserting itself and re-queues if anything committed since its
//! evaluation.
//!
//! ## Supported fragment
//!
//! Immediate and delayed transactions, selection, repetition, `let`,
//! `spawn`, `exit`, `abort`, and views. **Consensus transactions and
//! replication are not supported** (they need global coordination the
//! serial and rounds schedulers provide); programs using them are
//! rejected with [`RuntimeError::Unsupported`]. This fragment covers the
//! paper's worker-model programs, which is what the scaling experiment
//! (E5) measures.
//!
//! [`Runtime::run_rounds`]: crate::Runtime::run_rounds

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sdl_dataspace::{
    shard_of_pattern, shard_of_watch_key, Action, Dataspace, PlanMode, ShardSet, ShardedDataspace,
    SolveLimits, WatchKey, WatchSet,
};
use sdl_durability::{RecoveredState, Snapshotter, Wal};
use sdl_lang::ast::TxnKind;
use sdl_lang::expr::eval;
use sdl_metrics::{Counter, Gauge, Hist, Metrics, ShardCounter};
use sdl_sync::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, RelaxedCounter};
use sdl_tuple::{ProcId, Tuple, TupleId, Value};

use crate::builtins::Builtins;
use crate::error::RuntimeError;
use crate::outcome::Outcome;
use crate::process::{Frame, ProcessInstance};
use crate::program::{CompiledBranch, CompiledProgram, CompiledStmt, CompiledTxn};
use crate::sched::{attempts_counter, batch_desc, committed_counter, failed_counter, wal_err};
use crate::trace::{self, ParkOutcome, SpanPhase, TraceRecord, Tracer, Track};
use crate::txn::{self, EvalProbe, Pending, PlanConfig};
use crate::view::{resolve_fields, EnvCtx};

/// Outcome and statistics of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Committed transactions.
    pub commits: u64,
    /// Evaluation attempts.
    pub attempts: u64,
    /// Commits that failed validation and retried.
    pub conflicts: u64,
    /// Tuples left in the dataspace.
    pub final_tuples: usize,
}

/// Configures and creates a [`ParallelRuntime`].
#[derive(Debug)]
pub struct ParallelBuilder {
    program: Arc<CompiledProgram>,
    threads: usize,
    shards: usize,
    seed: u64,
    builtins: Builtins,
    max_attempts: u64,
    plan_mode: PlanMode,
    exact_wakes: bool,
    tuples: Vec<Tuple>,
    spawns: Vec<(String, Vec<Value>)>,
    metrics: Metrics,
    wal: Option<Arc<Wal>>,
    recovered: Option<RecoveredState>,
    tracer: Tracer,
    stall_threshold: Option<Duration>,
    skip_park_recheck: bool,
}

impl ParallelBuilder {
    /// Number of worker threads (default: available parallelism).
    pub fn threads(mut self, n: usize) -> ParallelBuilder {
        self.threads = n.max(1);
        self
    }

    /// Number of dataspace shards (default 1, which reproduces the
    /// single-lock executor bit-for-bit; clamped to
    /// [`sdl_dataspace::MAX_SHARDS`]).
    pub fn shards(mut self, n: usize) -> ParallelBuilder {
        self.shards = n.clamp(1, sdl_dataspace::MAX_SHARDS);
        self
    }

    /// Scheduler seed.
    pub fn seed(mut self, seed: u64) -> ParallelBuilder {
        self.seed = seed;
        self
    }

    /// Replaces the built-in registry.
    pub fn builtins(mut self, builtins: Builtins) -> ParallelBuilder {
        self.builtins = builtins;
        self
    }

    /// Caps evaluation attempts.
    pub fn max_attempts(mut self, n: u64) -> ParallelBuilder {
        self.max_attempts = n;
        self
    }

    /// Sets the query-plan mode (default selectivity-planned; pass
    /// [`PlanMode::SourceOrder`] for the ablation baseline).
    pub fn plan_mode(mut self, mode: PlanMode) -> ParallelBuilder {
        self.plan_mode = mode;
        self
    }

    /// Enables or disables value-level watch keys (default on; pass
    /// `false` for the `--coarse-wakes` ablation baseline).
    pub fn exact_wakes(mut self, on: bool) -> ParallelBuilder {
        self.exact_wakes = on;
        self
    }

    /// Adds an initial tuple.
    pub fn tuple(mut self, t: Tuple) -> ParallelBuilder {
        self.tuples.push(t);
        self
    }

    /// Adds initial tuples.
    pub fn tuples<I: IntoIterator<Item = Tuple>>(mut self, ts: I) -> ParallelBuilder {
        self.tuples.extend(ts);
        self
    }

    /// Adds an initial process.
    pub fn spawn(mut self, name: &str, args: Vec<Value>) -> ParallelBuilder {
        self.spawns.push((name.to_owned(), args));
        self
    }

    /// Attaches a metrics handle. Counters use relaxed atomics, so the
    /// overhead under contention stays negligible.
    pub fn metrics(mut self, metrics: Metrics) -> ParallelBuilder {
        self.metrics = metrics;
        self
    }

    /// Attaches a tracer recording the causal span chain of every
    /// attempt (eval, plan, lock waits, effects, commits, parks, wakes,
    /// conflicts). Disabled tracers cost one branch per site.
    pub fn tracer(mut self, tracer: Tracer) -> ParallelBuilder {
        self.tracer = tracer;
        self
    }

    /// Arms the stall watchdog: a process parked longer than `threshold`
    /// is flagged in the `sdl_stalled_processes` gauge and recorded in
    /// the trace with its watch keys and nearest-miss commits.
    pub fn stall_threshold(mut self, threshold: Duration) -> ParallelBuilder {
        self.stall_threshold = Some(threshold);
        self
    }

    /// Test-only fault injection: disables the park-path epoch re-check,
    /// reintroducing the lost-wakeup window the protocol closes. Exists
    /// so the schedule-exploration tests can prove the explorer would
    /// catch a regression of the re-check; never set it in real runs.
    #[doc(hidden)]
    pub fn testing_skip_park_recheck(mut self, on: bool) -> ParallelBuilder {
        self.skip_park_recheck = on;
        self
    }

    /// Attaches a write-ahead log: every commit appends one record
    /// *inside* its write-footprint lock scope, so the log order is a
    /// valid serialisation of the run. Fsyncs happen after the locks
    /// drop, letting concurrent committers share one (group commit).
    pub fn wal(mut self, wal: Arc<Wal>) -> ParallelBuilder {
        self.wal = Some(wal);
        self
    }

    /// Seeds the sharded store from recovered state instead of the
    /// program's `init` tuples. The shard count must match the one the
    /// log was written under, so each recovered id lands back on the
    /// shard whose strided sequence minted it.
    pub fn recover_from(mut self, state: RecoveredState) -> ParallelBuilder {
        self.recovered = Some(state);
        self
    }

    /// Builds the runtime.
    ///
    /// # Errors
    ///
    /// Fails if the program uses consensus or replication, if init
    /// expressions cannot evaluate, or if an initial spawn is invalid.
    pub fn build(self) -> Result<ParallelRuntime, RuntimeError> {
        for def in self.program.defs() {
            check_supported(&def.body)?;
        }
        // Init tuples go through the sharded store so every id is minted
        // on its shard's strided sequence — id→shard stays O(1).
        let mut ds = ShardedDataspace::new(self.shards);
        ds.set_metrics(self.metrics.clone());
        let env = std::collections::HashMap::new();
        let ctx = EnvCtx {
            env: &env,
            vars: None,
            builtins: &self.builtins,
        };
        if let Some(state) = &self.recovered {
            // Recovered ids must land back on the shards whose strided
            // sequences minted them, and the cursors must advance past
            // every id ever minted (even since-retracted ones).
            state.check_shards(self.shards as u64).map_err(wal_err)?;
            for (id, t) in &state.tuples {
                ds.insert_instance(*id, t.clone());
            }
            ds.advance_cursors(&state.cursors);
        } else {
            for fields in &self.program.init_tuples {
                let mut vals = Vec::with_capacity(fields.len());
                for f in fields {
                    vals.push(eval(f, &ctx).map_err(|source| RuntimeError::Eval {
                        source,
                        context: "init tuple".to_owned(),
                    })?);
                }
                ds.assert_tuple(ProcId::ENV, Tuple::new(vals));
            }
            for t in self.tuples {
                ds.assert_tuple(ProcId::ENV, t);
            }
            // Builder-time asserts bypass the commit path; a fresh log
            // captures them as a genesis snapshot.
            if let Some(wal) = &self.wal {
                if wal.last_appended() == 0 {
                    let (cursors, tuples) = ds.read_shards(ds.all_shards()).snapshot_state();
                    wal.write_snapshot(&cursors, &tuples).map_err(wal_err)?;
                }
            }
        }
        let mut initial = Vec::new();
        let mut next_pid = 1u64;
        let mut spawn_list: Vec<(String, Vec<Value>)> = Vec::new();
        for (name, args) in &self.program.init_spawns {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, &ctx).map_err(|source| RuntimeError::Eval {
                    source,
                    context: "init spawn argument".to_owned(),
                })?);
            }
            spawn_list.push((name.clone(), vals));
        }
        spawn_list.extend(self.spawns);
        for (name, args) in spawn_list {
            let def = self
                .program
                .def(&name)
                .ok_or_else(|| RuntimeError::UnknownProcess(name.clone()))?
                .clone();
            if def.params.len() != args.len() {
                return Err(RuntimeError::SpawnArity {
                    process: name,
                    expected: def.params.len(),
                    found: args.len(),
                });
            }
            initial.push(ProcessInstance::new(ProcId(next_pid), def, args));
            next_pid += 1;
        }
        Ok(ParallelRuntime {
            program: self.program,
            threads: self.threads,
            seed: self.seed,
            builtins: Arc::new(self.builtins),
            max_attempts: self.max_attempts,
            plan_mode: self.plan_mode,
            exact_wakes: self.exact_wakes,
            ds,
            initial,
            next_pid,
            metrics: self.metrics,
            wal: self.wal,
            tracer: self.tracer,
            stall_threshold: self.stall_threshold,
            skip_park_recheck: self.skip_park_recheck,
        })
    }
}

fn check_supported(stmts: &[CompiledStmt]) -> Result<(), RuntimeError> {
    for s in stmts {
        match s {
            CompiledStmt::Txn(t) => {
                if t.kind == TxnKind::Consensus {
                    return Err(RuntimeError::Unsupported(
                        "consensus transactions in the threaded executor".to_owned(),
                    ));
                }
            }
            CompiledStmt::Select(b) | CompiledStmt::Repeat(b) => {
                for br in b.iter() {
                    if br.guard.kind == TxnKind::Consensus {
                        return Err(RuntimeError::Unsupported(
                            "consensus transactions in the threaded executor".to_owned(),
                        ));
                    }
                    check_supported(&br.rest)?;
                }
            }
            CompiledStmt::Replicate(_) => {
                return Err(RuntimeError::Unsupported(
                    "replication in the threaded executor".to_owned(),
                ));
            }
        }
    }
    Ok(())
}

/// A multithreaded SDL executor over a shared (optionally sharded)
/// dataspace.
///
/// # Examples
///
/// ```
/// use sdl_core::parallel::ParallelRuntime;
/// use sdl_core::CompiledProgram;
/// use sdl_tuple::{tuple, Value};
///
/// let program = CompiledProgram::from_source(r#"
///     process Worker() {
///         loop { exists j : <job, j>! -> <done, j> }
///     }
/// "#).unwrap();
/// let mut b = ParallelRuntime::builder(program).threads(4).shards(4);
/// for j in 0..100i64 {
///     b = b.tuple(tuple![Value::atom("job"), j]);
/// }
/// for _ in 0..4 {
///     b = b.spawn("Worker", vec![]);
/// }
/// let (report, ds) = b.build().unwrap().run().unwrap();
/// assert!(report.outcome.is_completed());
/// assert_eq!(ds.len(), 100);
/// ```
#[derive(Debug)]
pub struct ParallelRuntime {
    program: Arc<CompiledProgram>,
    threads: usize,
    seed: u64,
    builtins: Arc<Builtins>,
    max_attempts: u64,
    plan_mode: PlanMode,
    exact_wakes: bool,
    ds: ShardedDataspace,
    initial: Vec<ProcessInstance>,
    next_pid: u64,
    metrics: Metrics,
    wal: Option<Arc<Wal>>,
    tracer: Tracer,
    stall_threshold: Option<Duration>,
    skip_park_recheck: bool,
}

/// Stall-watchdog configuration shared by the workers and the watchdog
/// thread: the park threshold plus a ring of recent commits for
/// nearest-miss reporting (newest last).
struct StallCfg {
    threshold: Duration,
    recent: Mutex<VecDeque<(u64, WatchSet, String)>>,
}

impl StallCfg {
    fn push_recent(&self, commit: u64, keys: WatchSet, desc: String) {
        let mut r = self.recent.lock();
        if r.len() >= 32 {
            r.pop_front();
        }
        r.push_back((commit, keys, desc));
    }
}

struct Shared {
    program: Arc<CompiledProgram>,
    builtins: Arc<Builtins>,
    sds: ShardedDataspace,
    /// Bumped (SeqCst) after every commit's locks drop. Parkers compare
    /// it against the value read before evaluating to detect commits
    /// that landed while they were off-lock.
    epoch: AtomicU64,
    queue: Mutex<VecDeque<ProcessInstance>>,
    cv: Condvar,
    /// One blocked index per shard, following the wake-routing
    /// partition, keyed by watch key: a commit that changed shard *s*
    /// looks up only its published keys in `blocked[s]` — the threaded
    /// counterpart of the serial scheduler's reverse `wake_index`,
    /// replacing the per-shard linear scan.
    blocked: Vec<Mutex<ShardBlocked>>,
    /// Tasks enqueued or being processed; 0 ⇒ nothing can ever wake.
    pending: AtomicUsize,
    done: AtomicBool,
    attempts: RelaxedCounter,
    commits: RelaxedCounter,
    conflicts: RelaxedCounter,
    step_limited: AtomicBool,
    max_attempts: u64,
    plan_config: PlanConfig,
    next_pid: RelaxedCounter,
    error: Mutex<Option<RuntimeError>>,
    /// Test-only fault injection: when set, [`park`] skips the
    /// post-insert epoch re-check, reintroducing the lost-wakeup race
    /// the protocol exists to close. The schedule explorer must find it.
    skip_park_recheck: bool,
    metrics: Metrics,
    /// Write-ahead log; appends happen inside commit write-lock scopes,
    /// fsyncs after they drop.
    wal: Option<Arc<Wal>>,
    /// Background snapshot writer: commit threads capture the store and
    /// hand it off instead of serialising the snapshot inline.
    snapshotter: Mutex<Option<Snapshotter>>,
    tracer: Tracer,
    stall: Option<StallCfg>,
}

/// A blocked process. The entry is shared between every per-shard list
/// its watch keys route to; `slot` holds the instance until exactly one
/// claimant (a waking commit, the parker re-queueing itself, or the
/// final collection) takes it. Entries whose slot has been emptied are
/// stale stubs, dropped lazily the next time their list is scanned.
struct Parked {
    watch: WatchSet,
    slot: Mutex<Option<ProcessInstance>>,
    /// When it parked (for the blocked-time histogram and the stall
    /// watchdog; `None` when neither metrics nor the watchdog is on).
    since: Option<Instant>,
    /// Park start on the trace clock (`0` when tracing is off).
    park_t_us: u64,
    /// Set once by the watchdog so the gauge and the trace flag each
    /// stalled park exactly once across its shard-list replicas.
    stalled: AtomicBool,
}

/// One shard's blocked processes, indexed by watch key. An entry
/// appears under every one of its keys that routes to this shard (and
/// in every shard for unroutable arity keys), so a wake-up is a hash
/// lookup per published key instead of a scan over all parked entries.
/// A key-indexed hit already implies the watch intersects the change,
/// so no per-entry intersection test remains. Stale stubs (slot already
/// claimed elsewhere) are dropped lazily when their key next fires.
///
/// The index is an ordered map so scans (watchdog, end-of-run drain)
/// visit entries in a deterministic order — a requirement for the
/// schedule explorer, whose replay assumes identical lock-acquisition
/// sequences given identical decisions.
#[derive(Default)]
struct ShardBlocked {
    by_key: BTreeMap<WatchKey, Vec<Arc<Parked>>>,
    /// Entries with an empty watch set. No commit can ever wake them;
    /// they are held only so the end-of-run drain reports them blocked.
    keyless: Vec<Arc<Parked>>,
}

impl ParallelRuntime {
    /// Starts configuring a parallel runtime.
    pub fn builder(program: CompiledProgram) -> ParallelBuilder {
        ParallelBuilder {
            program: Arc::new(program),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            shards: 1,
            seed: 0,
            builtins: Builtins::standard(),
            max_attempts: 500_000_000,
            plan_mode: PlanMode::default(),
            exact_wakes: true,
            tuples: Vec::new(),
            spawns: Vec::new(),
            metrics: Metrics::disabled(),
            wal: None,
            recovered: None,
            tracer: Tracer::disabled(),
            stall_threshold: None,
            skip_park_recheck: false,
        }
    }

    /// Runs to completion or quiescence, returning the report and the
    /// final dataspace (shards merged back into one store, ids intact).
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] any worker hit.
    pub fn run(self) -> Result<(ParallelReport, Dataspace), RuntimeError> {
        let index_mode = self.ds.index_mode();
        let n_shards = self.ds.num_shards();
        let shared = Arc::new(Shared {
            program: self.program,
            builtins: self.builtins,
            sds: self.ds,
            epoch: AtomicU64::new(0),
            queue: Mutex::new(self.initial.clone().into()),
            cv: Condvar::new(),
            blocked: (0..n_shards)
                .map(|_| Mutex::new(ShardBlocked::default()))
                .collect(),
            pending: AtomicUsize::new(self.initial.len()),
            done: AtomicBool::new(self.initial.is_empty()),
            attempts: RelaxedCounter::new(0),
            commits: RelaxedCounter::new(0),
            conflicts: RelaxedCounter::new(0),
            step_limited: AtomicBool::new(false),
            max_attempts: self.max_attempts,
            plan_config: PlanConfig {
                mode: self.plan_mode,
                index_mode,
                exact_wakes: self.exact_wakes,
            },
            next_pid: RelaxedCounter::new(self.next_pid),
            error: Mutex::new(None),
            metrics: self.metrics,
            snapshotter: Mutex::new(self.wal.as_ref().map(|w| Snapshotter::new(Arc::clone(w)))),
            wal: self.wal,
            tracer: self.tracer,
            stall: self.stall_threshold.map(|threshold| StallCfg {
                threshold,
                recent: Mutex::new(VecDeque::new()),
            }),
            skip_park_recheck: self.skip_park_recheck,
        });
        sdl_sync::scope(|scope| {
            for w in 0..self.threads {
                let shared = shared.clone();
                let seed = self.seed.wrapping_add(w as u64);
                scope.spawn(move || worker(&shared, seed, w));
            }
            if shared.stall.is_some() {
                let shared = shared.clone();
                scope.spawn(move || watchdog(&shared));
            }
        });
        if let Some(e) = shared.error.lock().take() {
            return Err(e);
        }
        // Wakes enqueued after the run wound down (done raced a wake)
        // are never re-run; classify them so the wake ledger balances:
        // every WakeupCommit ends as exactly one WakeProgress or
        // WakeSpurious.
        for p in shared.queue.lock().drain(..) {
            if p.woken {
                shared.metrics.inc(Counter::WakeSpurious);
            }
        }
        // Drain the per-shard blocked indexes; taking each slot dedupes
        // entries that sat under several keys or shards.
        let blocked_pids: Vec<ProcId> = {
            let mut pids = Vec::new();
            for list in &shared.blocked {
                let sb = list.lock();
                for e in sb.by_key.values().flatten().chain(sb.keyless.iter()) {
                    if let Some(p) = e.slot.lock().take() {
                        shared.metrics.add_gauge(Gauge::BlockedQueueDepth, -1);
                        if e.stalled.load(Ordering::SeqCst) {
                            shared.metrics.add_gauge(Gauge::StalledProcesses, -1);
                        }
                        if shared.tracer.enabled() {
                            let now = shared.tracer.now_us();
                            shared.tracer.record(TraceRecord::Park {
                                pid: p.id,
                                t_us: e.park_t_us,
                                dur_us: now.saturating_sub(e.park_t_us),
                                keys: trace::watch_labels(&e.watch),
                                outcome: ParkOutcome::Drained,
                            });
                        }
                        pids.push(p.id);
                    }
                }
            }
            pids.sort_unstable();
            pids
        };
        let outcome = if shared.step_limited.load(Ordering::SeqCst) {
            Outcome::StepLimit
        } else if blocked_pids.is_empty() {
            Outcome::Completed
        } else {
            Outcome::Quiescent {
                blocked: blocked_pids,
            }
        };
        // Drain the background snapshot writer, then make whatever the
        // fsync policy deferred durable before the run is reported back.
        let snapshotter = shared.snapshotter.lock().take();
        if let Some(snap) = snapshotter {
            snap.finish().map_err(wal_err)?;
        }
        if let Some(wal) = &shared.wal {
            wal.sync().map_err(wal_err)?;
        }
        let ds = shared.sds.drain_into_dataspace();
        let report = ParallelReport {
            outcome,
            commits: shared.commits.load(),
            attempts: shared.attempts.load(),
            conflicts: shared.conflicts.load(),
            final_tuples: ds.len(),
        };
        Ok((report, ds))
    }
}

fn worker(shared: &Shared, seed: u64, index: usize) {
    trace::set_worker_track(index);
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let task = {
            let mut q = shared.queue.lock();
            loop {
                if shared.done.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                shared.cv.wait(&mut q);
            }
        };
        if let Err(e) = run_process(shared, task, &mut rng) {
            let mut slot = shared.error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
            finish_done(shared);
        }
        // This task is complete (terminated or parked in `blocked`).
        if shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            finish_done(shared);
        }
    }
}

/// Periodically scans the per-shard blocked lists, flagging processes
/// parked beyond the configured threshold: gauge `sdl_stalled_processes`
/// goes up, and the trace gets a [`TraceRecord::Stall`] carrying the
/// watch keys plus the nearest-miss recent commits (same relation,
/// different values).
fn watchdog(shared: &Shared) {
    let cfg = shared.stall.as_ref().expect("watchdog spawned with config");
    let tick = cfg.threshold.div_f64(2.0).min(Duration::from_millis(20));
    loop {
        if shared.done.load(Ordering::SeqCst) {
            return;
        }
        sdl_sync::sleep(tick);
        let now = Instant::now();
        for list in &shared.blocked {
            let sb = list.lock();
            for e in sb.by_key.values().flatten().chain(sb.keyless.iter()) {
                let Some(since) = e.since else { continue };
                let waited = now.saturating_duration_since(since);
                if waited < cfg.threshold {
                    continue;
                }
                // Flag while holding the slot lock: a waker claims the
                // slot under the same lock, so exactly one side settles
                // the gauge (flag set before a claim ⇒ the claimant
                // decrements; claim first ⇒ the stub is never flagged).
                let slot = e.slot.lock();
                let Some(pid) = slot.as_ref().map(|p| p.id) else {
                    continue; // stale stub: claimed elsewhere
                };
                if e.stalled.swap(true, Ordering::SeqCst) {
                    continue; // already flagged via another key or shard
                }
                shared.metrics.add_gauge(Gauge::StalledProcesses, 1);
                if shared.tracer.enabled() {
                    let mut recent = cfg.recent.lock();
                    shared.tracer.record(TraceRecord::Stall {
                        pid,
                        t_us: shared.tracer.now_us(),
                        waited_us: waited.as_micros() as u64,
                        keys: trace::watch_labels(&e.watch),
                        near_misses: trace::near_misses(&e.watch, recent.make_contiguous()),
                    });
                }
            }
        }
    }
}

fn finish_done(shared: &Shared) {
    shared.done.store(true, Ordering::SeqCst);
    let _q = shared.queue.lock();
    shared.cv.notify_all();
}

fn enqueue(shared: &Shared, proc: ProcessInstance) {
    shared.pending.fetch_add(1, Ordering::SeqCst);
    let mut q = shared.queue.lock();
    q.push_back(proc);
    shared.cv.notify_one();
}

/// The shards a transaction's evaluation may read over a full-store
/// view: those of its resolved atom patterns. Falls back to every shard
/// when a pattern cannot be resolved or routed.
///
/// Shared footprint-lock entry point: both this executor (through
/// [`eval_footprint`], which adds the view-restriction fallback) and the
/// networked server's per-loop engines route their read-lock
/// acquisitions through this computation, so a `read_shards` over the
/// result is guaranteed to cover everything the evaluation can touch.
pub fn txn_read_footprint(
    sds: &ShardedDataspace,
    t: &CompiledTxn,
    env: &HashMap<String, Value>,
    builtins: &Builtins,
) -> ShardSet {
    let n = sds.num_shards();
    let all = sds.all_shards();
    if n == 1 {
        return all;
    }
    let ctx = EnvCtx {
        env,
        vars: None,
        builtins,
    };
    let mut fp = ShardSet::new();
    for a in &t.atoms {
        match resolve_fields(&a.fields, &ctx, "footprint pattern") {
            Ok(p) => match shard_of_pattern(&p, n) {
                Some(s) => fp.insert(s),
                None => return all,
            },
            Err(_) => return all,
        }
    }
    fp
}

/// The shards a pending commit touches over a full-store view: those of
/// its read/retract ids, asserted tuples, and (for validation) its
/// negation and forall evidence patterns. Falls back to every shard when
/// evidence is unroutable.
///
/// Shared footprint-lock entry point (see [`txn_read_footprint`]): a
/// `write_shards` over the result covers both `Pending::validate` and
/// the commit's `apply_batch`.
pub fn pending_write_footprint(sds: &ShardedDataspace, p: &Pending) -> ShardSet {
    let n = sds.num_shards();
    let all = sds.all_shards();
    if n == 1 {
        return all;
    }
    let mut fp = ShardSet::new();
    for id in p.reads.iter().chain(&p.retracts) {
        fp.insert(sds.shard_of_id(*id));
    }
    for tu in &p.asserts {
        fp.insert(sds.shard_of_tuple(tu));
    }
    for pat in &p.neg_checks {
        match shard_of_pattern(pat, n) {
            Some(s) => fp.insert(s),
            None => return all,
        }
    }
    for ev in &p.forall_checks {
        match shard_of_pattern(&ev.pattern, n) {
            Some(s) => fp.insert(s),
            None => return all,
        }
    }
    fp
}

/// [`txn_read_footprint`] plus the executor's view-restriction fallback
/// (admission tests run rule-condition queries over patterns outside the
/// transaction's own atom list).
fn eval_footprint(shared: &Shared, proc: &ProcessInstance, t: &CompiledTxn) -> ShardSet {
    if !proc.def.view.imports_everything() {
        return shared.sds.all_shards();
    }
    txn_read_footprint(&shared.sds, t, &proc.env, &shared.builtins)
}

/// [`pending_write_footprint`] plus the executor's export-rule fallback
/// (export condition queries range over the whole store).
fn commit_footprint(shared: &Shared, proc: &ProcessInstance, p: &Pending) -> ShardSet {
    if !proc.def.view.exports_everything() && !p.asserts.is_empty() {
        return shared.sds.all_shards();
    }
    pending_write_footprint(&shared.sds, p)
}

/// Wakes blocked processes subscribed to any of `changed`'s keys,
/// looking each published key up in the changed shards' reverse
/// indexes — no scan over unrelated parked entries. Must run after the
/// commit's epoch increment: a parker that inserts too late to be seen
/// here is guaranteed to observe the new epoch and re-queue itself.
fn wake(shared: &Shared, changed: &WatchSet, changed_shards: ShardSet, commit: u64) {
    if changed.is_empty() {
        return;
    }
    let n = shared.sds.num_shards();
    // Sort the published keys: `WatchSet` iterates in hash order, and
    // the blocked-list lock and slot-claim sequence must be identical
    // across runs for schedule replay to hold.
    let mut keys: Vec<WatchKey> = changed.iter().copied().collect();
    keys.sort_unstable();
    let mut woken: Vec<(Arc<Parked>, ProcessInstance, WatchKey)> = Vec::new();
    for s in changed_shards.iter() {
        let mut sb = shared.blocked[s].lock();
        for key in &keys {
            // A routable key wakes through its own shard's index; an
            // unroutable (arity) key is registered in every shard, so
            // any changed shard's index covers it — later shards just
            // clean up the stubs the first one left.
            if shard_of_watch_key(key, n).is_some_and(|r| r != s) {
                continue;
            }
            let Some(list) = sb.by_key.get_mut(key) else {
                continue;
            };
            for e in list.drain(..) {
                // A key-indexed hit implies the watch intersects the
                // change; an empty slot is a stale stub claimed via
                // another key or shard.
                let claimed = e.slot.lock().take();
                if let Some(mut p) = claimed {
                    p.woken = true;
                    woken.push((e, p, *key));
                }
            }
            sb.by_key.remove(key);
        }
    }
    for (e, p, key) in woken {
        shared.metrics.inc(Counter::WakeupCommit);
        shared.metrics.observe_timer(Hist::BlockedSeconds, e.since);
        shared.metrics.add_gauge(Gauge::BlockedQueueDepth, -1);
        if e.stalled.load(Ordering::SeqCst) {
            shared.metrics.add_gauge(Gauge::StalledProcesses, -1);
        }
        if shared.tracer.enabled() {
            // The park interval closes here, and the wake edge carries
            // the committing transaction's id — the causality arrow the
            // exporter draws from commit slice to wake point.
            let now = shared.tracer.now_us();
            shared.tracer.record(TraceRecord::Park {
                pid: p.id,
                t_us: e.park_t_us,
                dur_us: now.saturating_sub(e.park_t_us),
                keys: trace::watch_labels(&e.watch),
                outcome: ParkOutcome::Woken,
            });
            shared.tracer.record(TraceRecord::Wake {
                pid: p.id,
                commit,
                key: key.label(),
                t_us: now,
            });
        }
        enqueue(shared, p);
    }
}

enum TxnOutcome {
    Committed(Pending),
    /// Query did not hold; carries the commit epoch the evaluation read,
    /// for the race-free park protocol, and — when the caller may park —
    /// a narrowed watch set probed *inside* the read-lock scope, so its
    /// emptiness evidence describes exactly the state the failed
    /// evaluation saw. The park epoch re-check invalidates it if any
    /// commit lands after those locks drop.
    Failed {
        epoch: u64,
        watch: Option<WatchSet>,
    },
    /// The global attempt cap was hit mid-evaluation. Distinct from
    /// `Failed`: the query's verdict is unknown, so the process must halt
    /// where it stands — advancing (immediate) or parking (delayed) would
    /// corrupt the residual state the report describes.
    StepLimited,
}

/// Evaluate under the read-footprint locks, validate + apply under the
/// write-footprint locks.
/// `want_watch` asks for the narrowed park subscription on failure; pass
/// it when the caller may park on this transaction (delayed, or any
/// select/loop guard — a parked select retries every branch on wake, so
/// even immediate guards contribute watch keys).
fn attempt(
    shared: &Shared,
    proc: &ProcessInstance,
    t: &CompiledTxn,
    want_watch: bool,
) -> Result<TxnOutcome, RuntimeError> {
    loop {
        if shared.attempts.fetch_add(1) >= shared.max_attempts {
            shared.step_limited.store(true, Ordering::SeqCst);
            finish_done(shared);
            return Ok(TxnOutcome::StepLimited);
        }
        shared.metrics.inc(attempts_counter(t.kind));
        // One trace id per attempt loop iteration: a retry after a
        // conflict is a fresh causal unit with its own span chain.
        let trace_id = shared.tracer.new_trace();
        // The epoch is read before the locks: a commit that lands after
        // this point is either serialised behind our locks (we see its
        // effects) or bumps the epoch (a parker re-queues). Either way no
        // wake-up is lost.
        let epoch = shared.epoch.load(Ordering::SeqCst);
        // Query under the read-footprint locks; effect construction
        // (which may run expensive host functions) outside any lock.
        let timer = shared.metrics.start_timer();
        let eval_span = shared.tracer.begin();
        let mut probe = eval_span.map(|_| EvalProbe::new());
        let (query, park_watch) = {
            let read_fp = eval_footprint(shared, proc, t);
            let lock_timer = shared.metrics.start_timer();
            let lock_span = shared.tracer.begin();
            let view = shared.sds.read_shards(read_fp);
            shared
                .metrics
                .observe_timer(Hist::ShardLockWaitSeconds, lock_timer);
            shared
                .tracer
                .span(lock_span, trace_id, proc.id, SpanPhase::LockWaitRead);
            let source = proc.def.view.window(&view, &proc.env, &shared.builtins)?;
            let query = txn::evaluate_query_probed(
                t,
                &source,
                &proc.env,
                &shared.builtins,
                SolveLimits::default(),
                shared.plan_config,
                probe.as_mut(),
            )?;
            // Probe the narrowed subscription while the read locks are
            // still held: the emptiness evidence is sound for the state
            // the evaluation just failed against, and anything that
            // commits after these locks drop bumps the epoch, making
            // the parker re-queue instead of trusting a stale probe.
            let park_watch = if query.is_none() && want_watch {
                Some(txn::watch_set_on(
                    t,
                    &proc.env,
                    &shared.builtins,
                    shared.plan_config.exact_wakes,
                    Some(&source),
                ))
            } else {
                None
            };
            (query, park_watch)
        };
        shared.metrics.observe_timer(Hist::QueryEvalSeconds, timer);
        if let (Some(t0), Some(pr)) = (eval_span, &probe) {
            // Plan-cache lookup nests inside the eval span.
            if let Some((off, dur)) = pr.plan_us {
                shared.tracer.record(TraceRecord::Span {
                    trace: trace_id,
                    pid: proc.id,
                    track: Track::current(),
                    phase: SpanPhase::Plan,
                    t_us: t0 + off,
                    dur_us: dur,
                });
            }
        }
        shared
            .tracer
            .span(eval_span, trace_id, proc.id, SpanPhase::Eval);
        let Some(query) = query else {
            shared.metrics.inc(failed_counter(t.kind));
            return Ok(TxnOutcome::Failed {
                epoch,
                watch: park_watch,
            });
        };
        let effects_timer = shared.metrics.start_timer();
        let effects_span = shared.tracer.begin();
        let p = txn::build_effects(t, &query, &proc.env, &shared.builtins)?;
        let write_fp = commit_footprint(shared, proc, &p);
        shared
            .metrics
            .observe_timer(Hist::EffectsBuildSeconds, effects_timer);
        shared
            .tracer
            .span(effects_span, trace_id, proc.id, SpanPhase::Effects);
        let commit_span = shared.tracer.begin();
        let (changed, changed_shards, wal_commit, commit_id) = {
            let lock_timer = shared.metrics.start_timer();
            let lock_span = shared.tracer.begin();
            let mut ds = shared.sds.write_shards(write_fp);
            shared
                .metrics
                .observe_timer(Hist::ShardLockWaitSeconds, lock_timer);
            shared
                .tracer
                .span(lock_span, trace_id, proc.id, SpanPhase::LockWaitWrite);
            // Validation runs against the write footprint, which covers
            // every shard the evidence patterns route to — by the routing
            // invariant the answers equal the whole store's.
            if !p.validate(&ds) {
                shared.conflicts.fetch_add(1);
                shared.metrics.inc(Counter::TxnConflicts);
                for s in write_fp.iter() {
                    shared.metrics.add_shard(s, ShardCounter::Conflicts, 1);
                }
                if shared.tracer.enabled() {
                    // Still under the write locks, so the per-shard
                    // last-commit markers name a commit serialised
                    // before us — the batch this abort lost to.
                    shared.tracer.record(TraceRecord::Conflict {
                        trace: trace_id,
                        pid: proc.id,
                        track: Track::current(),
                        against: shared.sds.latest_commit_over(write_fp),
                        t_us: shared.tracer.now_us(),
                    });
                }
                drop(ds);
                continue; // somebody raced us; re-evaluate
            }
            // Export filtering runs against the pre-retraction store, so
            // a commit's own retractions cannot disable its exports.
            let allowed: Vec<bool> = p
                .asserts
                .iter()
                .map(|tu| proc.def.view.exports(tu, &ds, &proc.env, &shared.builtins))
                .collect();
            let dropped = allowed.iter().filter(|ok| !**ok).count() as u64;
            if dropped > 0 {
                shared.metrics.add(Counter::ExportDropped, dropped);
            }
            let mut actions: Vec<Action> = Vec::with_capacity(p.retracts.len() + p.asserts.len());
            actions.extend(p.retracts.iter().map(|id| Action::Retract(*id)));
            actions.extend(
                p.asserts
                    .iter()
                    .zip(&allowed)
                    .filter(|(_, ok)| **ok)
                    .map(|(tu, _)| Action::Assert(proc.id, tu.clone())),
            );
            let mut changed = WatchSet::new();
            let apply_timer = shared.metrics.start_timer();
            let (out, changed_shards) = ds.apply_batch(actions, &mut changed);
            shared
                .metrics
                .observe_timer(Hist::CommitApplySeconds, apply_timer);
            // Mint the commit id inside the lock scope and publish it on
            // the written shards: any attempt that later aborts against
            // this batch holds an overlapping write lock, so it reads a
            // marker serialised after this store.
            let commit_id = shared.tracer.new_commit();
            if commit_id != 0 {
                shared.sds.note_commit(write_fp, commit_id);
            }
            // Append while still holding the write footprint: any
            // conflicting commit is ordered behind these locks, so the
            // log's append order is a valid serialisation of the run
            // (disjoint-footprint commits commute). The fsync waits
            // until the locks drop.
            let wal_commit = match &shared.wal {
                Some(wal) => {
                    let retracts: Vec<TupleId> = out.retracted.iter().map(|(id, _)| *id).collect();
                    let applied = p
                        .asserts
                        .iter()
                        .zip(&allowed)
                        .filter(|(_, ok)| **ok)
                        .map(|(tu, _)| tu.clone());
                    let asserts: Vec<(TupleId, Tuple)> =
                        out.asserted.iter().copied().zip(applied).collect();
                    Some(wal.append(&retracts, &asserts).map_err(wal_err)?)
                }
                None => None,
            };
            (changed, changed_shards, wal_commit, commit_id)
        };
        // Locks are down; publish the commit before scanning blocked
        // lists so parkers that miss the scan catch the epoch change.
        shared.epoch.fetch_add(1, Ordering::SeqCst);
        shared.commits.fetch_add(1);
        shared.metrics.inc(committed_counter(t.kind));
        for s in write_fp.iter() {
            shared.metrics.add_shard(s, ShardCounter::Commits, 1);
        }
        if commit_id != 0 {
            let now = shared.tracer.now_us();
            let t0 = commit_span.unwrap_or(now);
            shared.tracer.record(TraceRecord::Commit {
                trace: trace_id,
                pid: proc.id,
                track: Track::current(),
                commit: commit_id,
                t_us: t0,
                dur_us: now.saturating_sub(t0),
                keys: trace::watch_labels(&changed),
                shards: write_fp.iter().collect(),
            });
            if let Some(cfg) = &shared.stall {
                cfg.push_recent(commit_id, changed.clone(), batch_desc(&p));
            }
        }
        if let Some(wal) = &shared.wal {
            // Group commit: if another thread's fsync already covered
            // this commit number, this returns without syncing.
            let commit = wal_commit.expect("appended under the write locks");
            wal.ensure_durable(commit).map_err(wal_err)?;
            if wal.snapshot_due() {
                let snapshotter = shared.snapshotter.lock();
                if let Some(snap) = snapshotter.as_ref() {
                    if snap.idle() {
                        // A full-footprint read view is consistent with
                        // the log: appends happen under shard write
                        // locks, so the state under all read locks is
                        // exactly "after the highest appended commit" —
                        // read `last_appended` while the view is held.
                        let view = shared.sds.read_shards(shared.sds.all_shards());
                        let commit = wal.last_appended();
                        let (cursors, tuples) = view.snapshot_state();
                        drop(view);
                        snap.offer(commit, cursors, tuples);
                    }
                }
            }
        }
        wake(shared, &changed, changed_shards, commit_id);
        return Ok(TxnOutcome::Committed(p));
    }
}

/// Applies `let`s and `spawn`s; returns true if the process terminated
/// (exit with no enclosing loop, or abort).
fn control(shared: &Shared, proc: &mut ProcessInstance, p: &Pending) -> Result<bool, RuntimeError> {
    for (name, v) in &p.lets {
        proc.env.insert(name.clone(), v.clone());
    }
    for (name, args) in &p.spawns {
        let def = shared
            .program
            .def(name)
            .ok_or_else(|| RuntimeError::UnknownProcess(name.clone()))?
            .clone();
        if def.params.len() != args.len() {
            return Err(RuntimeError::SpawnArity {
                process: name.clone(),
                expected: def.params.len(),
                found: args.len(),
            });
        }
        let id = ProcId(shared.next_pid.fetch_add(1));
        shared.metrics.inc(Counter::ProcessesSpawned);
        enqueue(shared, ProcessInstance::new(id, def, args.clone()));
    }
    if p.abort {
        return Ok(true);
    }
    if p.exit {
        return Ok(proc.unwind_exit().is_none());
    }
    Ok(false)
}

enum ProcFate {
    /// Keep stepping this process.
    Continue,
    /// Park it on these watch keys; `epoch` is the earliest commit epoch
    /// any of its failed evaluations read.
    Park { watch: WatchSet, epoch: u64 },
    /// The process is done.
    Terminated,
    /// The attempt cap was hit: stop stepping, leaving the process where
    /// it stands — neither advanced nor parked — while the run winds down
    /// with [`Outcome::StepLimit`].
    Halted,
}

/// Runs one process until it terminates or parks.
fn run_process(
    shared: &Shared,
    mut proc: ProcessInstance,
    rng: &mut StdRng,
) -> Result<(), RuntimeError> {
    loop {
        if shared.done.load(Ordering::SeqCst) {
            // Run wound down with this process mid-flight. If a commit
            // woke it, the wake never got its progress-or-spurious
            // verdict — settle it here so the wake ledger balances.
            if proc.woken {
                shared.metrics.inc(Counter::WakeSpurious);
            }
            return Ok(());
        }
        match step_once(shared, &mut proc, rng)? {
            ProcFate::Continue => {}
            ProcFate::Terminated => return Ok(()),
            ProcFate::Halted => {
                // The attempt cap hit mid-step, so this wake's verdict
                // is unknowable — settle it as spurious rather than
                // leak it (found by schedule exploration: the wake
                // ledger went unbalanced on step-limited runs).
                if proc.woken {
                    shared.metrics.inc(Counter::WakeSpurious);
                }
                return Ok(());
            }
            ProcFate::Park { watch, epoch } => {
                park(shared, watch, epoch, proc);
                return Ok(());
            }
        }
    }
}

fn step_once(
    shared: &Shared,
    proc: &mut ProcessInstance,
    rng: &mut StdRng,
) -> Result<ProcFate, RuntimeError> {
    let top = proc.frames.last().cloned();
    match top {
        None => Ok(ProcFate::Terminated),
        Some(Frame::Seq { stmts, idx }) => {
            if idx >= stmts.len() {
                proc.frames.pop();
                return Ok(ProcFate::Continue);
            }
            match stmts[idx].clone() {
                CompiledStmt::Txn(t) => {
                    match attempt(shared, proc, &t, t.kind == TxnKind::Delayed)? {
                        TxnOutcome::Committed(p) => {
                            if proc.woken {
                                proc.woken = false;
                                shared.metrics.inc(Counter::WakeProgress);
                            }
                            advance(proc);
                            if control(shared, proc, &p)? {
                                return Ok(ProcFate::Terminated);
                            }
                            Ok(ProcFate::Continue)
                        }
                        TxnOutcome::StepLimited => Ok(ProcFate::Halted),
                        TxnOutcome::Failed { epoch, watch } => match t.kind {
                            TxnKind::Immediate => {
                                advance(proc);
                                Ok(ProcFate::Continue)
                            }
                            TxnKind::Delayed => Ok(ProcFate::Park {
                                // The narrowed set probed under the eval
                                // read locks; full fallback if the probe
                                // was skipped.
                                watch: watch.unwrap_or_else(|| {
                                    txn::watch_set(
                                        &t,
                                        &proc.env,
                                        &shared.builtins,
                                        shared.plan_config.exact_wakes,
                                    )
                                }),
                                epoch,
                            }),
                            TxnKind::Consensus => unreachable!("rejected at build"),
                        },
                    }
                }
                CompiledStmt::Select(branches) => guards(shared, proc, &branches, true, rng),
                CompiledStmt::Repeat(branches) => {
                    advance(proc);
                    proc.frames.push(Frame::Loop { branches });
                    Ok(ProcFate::Continue)
                }
                CompiledStmt::Replicate(_) => unreachable!("rejected at build"),
            }
        }
        Some(Frame::Loop { branches }) => guards(shared, proc, &branches, false, rng),
        Some(Frame::Repl { .. }) => unreachable!("rejected at build"),
    }
}

fn advance(proc: &mut ProcessInstance) {
    if let Some(Frame::Seq { idx, .. }) = proc.frames.last_mut() {
        *idx += 1;
    }
}

fn guards(
    shared: &Shared,
    proc: &mut ProcessInstance,
    branches: &Arc<[CompiledBranch]>,
    is_select: bool,
    rng: &mut StdRng,
) -> Result<ProcFate, RuntimeError> {
    let mut order: Vec<usize> = (0..branches.len()).collect();
    order.shuffle(rng);
    let mut delayed_present = false;
    let mut earliest_epoch = u64::MAX;
    let mut branch_watch: Vec<Option<WatchSet>> = vec![None; branches.len()];
    for &i in &order {
        let guard = branches[i].guard.clone();
        if guard.kind == TxnKind::Delayed {
            delayed_present = true;
        }
        match attempt(shared, proc, &guard, true)? {
            TxnOutcome::Committed(p) => {
                if proc.woken {
                    proc.woken = false;
                    shared.metrics.inc(Counter::WakeProgress);
                }
                if is_select {
                    advance(proc);
                }
                if control(shared, proc, &p)? {
                    return Ok(ProcFate::Terminated);
                }
                if !p.exit && !branches[i].rest.is_empty() {
                    proc.frames.push(Frame::Seq {
                        stmts: branches[i].rest.clone(),
                        idx: 0,
                    });
                }
                return Ok(ProcFate::Continue);
            }
            TxnOutcome::Failed { epoch, watch } => {
                earliest_epoch = earliest_epoch.min(epoch);
                branch_watch[i] = watch;
            }
            TxnOutcome::StepLimited => return Ok(ProcFate::Halted),
        }
    }
    if delayed_present {
        // A parked select retries every branch on wake, so the
        // subscription is the union of the per-guard sets — each one
        // narrowed under its own evaluation's read locks. The park
        // epoch re-check runs against the *earliest* epoch any guard
        // read, so a commit racing any probe re-queues the process.
        let mut w = WatchSet::new();
        for (i, b) in branches.iter().enumerate() {
            match branch_watch[i].take() {
                Some(bw) => w.extend(&bw),
                None => w.extend(&txn::watch_set(
                    &b.guard,
                    &proc.env,
                    &shared.builtins,
                    shared.plan_config.exact_wakes,
                )),
            }
        }
        return Ok(ProcFate::Park {
            watch: w,
            epoch: earliest_epoch,
        });
    }
    if is_select {
        advance(proc);
    } else {
        proc.frames.pop();
    }
    Ok(ProcFate::Continue)
}

/// Parks a blocked process without losing wake-ups.
///
/// The race: a commit lands *after* our failed evaluation but *before*
/// we are visible in the blocked lists — its `wake` scan would miss us.
/// The protocol: insert the entry into every list its watch keys route
/// to, then re-read the commit epoch. If it differs from the one the
/// evaluation read, something committed in between: claim the slot back
/// and re-queue (the entries left behind are stale stubs, dropped on the
/// next scan of their lists). If it is unchanged, no commit published
/// since evaluation — and any later commit increments the epoch *before*
/// scanning, so it either sees our entry or we would have seen its
/// epoch.
fn park(shared: &Shared, watch: WatchSet, eval_epoch: u64, mut proc: ProcessInstance) {
    // Parking after a wakeup means the wake key matched but the query
    // still failed — classify the wake as spurious.
    if proc.woken {
        proc.woken = false;
        shared.metrics.inc(Counter::WakeSpurious);
    }
    let n = shared.sds.num_shards();
    let entry = Arc::new(Parked {
        since: shared
            .metrics
            .start_timer()
            .or_else(|| shared.stall.as_ref().map(|_| Instant::now())),
        park_t_us: shared.tracer.now_us(),
        stalled: AtomicBool::new(false),
        slot: Mutex::new(Some(proc)),
        watch,
    });
    // The depth gauge goes up *before* the entry becomes claimable: a
    // waker that beats the epoch re-check decrements on claim, and if
    // that ran ahead of a late increment the gauge would dip negative.
    shared.metrics.add_gauge(Gauge::BlockedQueueDepth, 1);
    // Register the entry under each watch key in the key's shard's
    // reverse index: functor and value keys pin one shard, arity keys
    // go in every shard (any of them may publish the change). An empty
    // watch can never be woken; it parks keyless on shard 0 so the
    // end-of-run drain still finds it. Keys are visited in sorted order
    // so the lock sequence replays deterministically under exploration.
    let mut keys: Vec<WatchKey> = entry.watch.iter().copied().collect();
    keys.sort_unstable();
    let mut any_key = false;
    for key in &keys {
        any_key = true;
        match shard_of_watch_key(key, n) {
            Some(s) => shared.blocked[s]
                .lock()
                .by_key
                .entry(*key)
                .or_default()
                .push(entry.clone()),
            None => {
                for s in 0..n {
                    shared.blocked[s]
                        .lock()
                        .by_key
                        .entry(*key)
                        .or_default()
                        .push(entry.clone());
                }
            }
        }
    }
    if !any_key {
        shared.blocked[0].lock().keyless.push(entry.clone());
    }
    if !shared.skip_park_recheck && shared.epoch.load(Ordering::SeqCst) != eval_epoch {
        // A commit published while we were parking; whether or not its
        // wake saw us, re-evaluating is the safe answer.
        if let Some(p) = entry.slot.lock().take() {
            shared.metrics.add_gauge(Gauge::BlockedQueueDepth, -1);
            if entry.stalled.load(Ordering::SeqCst) {
                shared.metrics.add_gauge(Gauge::StalledProcesses, -1);
            }
            if shared.tracer.enabled() {
                // The park never stuck; close it immediately so spans
                // stay balanced (no wake edge — the waking commit raced
                // past the lists before this entry was visible).
                let now = shared.tracer.now_us();
                shared.tracer.record(TraceRecord::Park {
                    pid: p.id,
                    t_us: entry.park_t_us,
                    dur_us: now.saturating_sub(entry.park_t_us),
                    keys: trace::watch_labels(&entry.watch),
                    outcome: ParkOutcome::Woken,
                });
            }
            enqueue(shared, p);
            return;
        }
        // A waker beat us to the slot and already re-queued us (and
        // settled the depth gauge when it claimed).
    }
    shared.metrics.inc(Counter::ProcessesBlocked);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompiledProgram;
    use sdl_dataspace::{shard_of_tuple, TupleSource};
    use sdl_tuple::tuple;

    fn job_program() -> CompiledProgram {
        CompiledProgram::from_source(
            "process Worker() {
                loop { exists j : <job, j>! -> <done, j> }
             }",
        )
        .unwrap()
    }

    #[test]
    fn workers_drain_the_job_pool() {
        let mut b = ParallelRuntime::builder(job_program()).threads(4).seed(1);
        for j in 0..200i64 {
            b = b.tuple(tuple![Value::atom("job"), j]);
        }
        for _ in 0..8 {
            b = b.spawn("Worker", vec![]);
        }
        let (report, ds) = b.build().unwrap().run().unwrap();
        assert!(report.outcome.is_completed(), "{:?}", report.outcome);
        assert_eq!(report.commits, 200);
        assert_eq!(ds.len(), 200);
        assert!(!ds.contains_match(&sdl_tuple::pattern![Value::atom("job"), any]));
    }

    #[test]
    fn workers_drain_the_job_pool_sharded() {
        for shards in [4usize, 16] {
            let mut b = ParallelRuntime::builder(job_program())
                .threads(4)
                .shards(shards)
                .seed(1);
            for j in 0..200i64 {
                b = b.tuple(tuple![Value::atom("job"), j]);
            }
            for _ in 0..8 {
                b = b.spawn("Worker", vec![]);
            }
            let (report, ds) = b.build().unwrap().run().unwrap();
            assert!(report.outcome.is_completed(), "{:?}", report.outcome);
            assert_eq!(report.commits, 200, "shards={shards}");
            assert_eq!(ds.len(), 200);
            assert!(!ds.contains_match(&sdl_tuple::pattern![Value::atom("job"), any]));
        }
    }

    #[test]
    fn delayed_consumers_wait_for_producers() {
        let program = CompiledProgram::from_source(
            "process Consumer(n) {
                exists v : <item, v>! => <got, n, v>;
             }
             process Producer(n) {
                -> <item, n>;
             }",
        )
        .unwrap();
        for shards in [1usize, 8] {
            let mut b = ParallelRuntime::builder(program.clone())
                .threads(4)
                .shards(shards)
                .seed(2);
            for n in 0..20i64 {
                b = b.spawn("Consumer", vec![Value::Int(n)]);
            }
            for n in 0..20i64 {
                b = b.spawn("Producer", vec![Value::Int(n)]);
            }
            let (report, ds) = b.build().unwrap().run().unwrap();
            assert!(report.outcome.is_completed(), "{:?}", report.outcome);
            assert_eq!(
                ds.count_matches(&sdl_tuple::pattern![Value::atom("got"), any, any]),
                20,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn quiescence_detected() {
        let program =
            CompiledProgram::from_source("process Waiter() { <never> => skip; }").unwrap();
        for shards in [1usize, 4] {
            let b = ParallelRuntime::builder(program.clone())
                .threads(2)
                .shards(shards)
                .spawn("Waiter", vec![])
                .spawn("Waiter", vec![]);
            let (report, _) = b.build().unwrap().run().unwrap();
            match report.outcome {
                Outcome::Quiescent { blocked } => assert_eq!(blocked.len(), 2),
                other => panic!("expected quiescence at shards={shards}, got {other:?}"),
            }
        }
    }

    #[test]
    fn step_limit_halts_without_advancing() {
        // Hitting the cap used to surface as a plain failure, so an
        // immediate loop guard advanced as if its query had legitimately
        // failed — the worker dropped out of its loop and the report
        // claimed completion. The cap must halt the process where it
        // stands and report a step limit.
        let mut b = ParallelRuntime::builder(job_program())
            .threads(1)
            .seed(5)
            .max_attempts(3);
        for j in 0..10i64 {
            b = b.tuple(tuple![Value::atom("job"), j]);
        }
        b = b.spawn("Worker", vec![]);
        let (report, ds) = b.build().unwrap().run().unwrap();
        assert!(
            matches!(report.outcome, Outcome::StepLimit),
            "{:?}",
            report.outcome
        );
        assert_eq!(report.commits, 3, "one commit per allowed attempt");
        // The capped attempt neither committed nor advanced: every
        // commit consumed exactly one job, nothing else changed.
        assert_eq!(
            ds.count_matches(&sdl_tuple::pattern![Value::atom("job"), any]),
            7
        );
        assert_eq!(
            ds.count_matches(&sdl_tuple::pattern![Value::atom("done"), any]),
            3
        );
    }

    #[test]
    fn consensus_is_rejected() {
        let program = CompiledProgram::from_source("process P() { <x> @> skip; }").unwrap();
        let r = ParallelRuntime::builder(program).spawn("P", vec![]).build();
        assert!(matches!(r, Err(RuntimeError::Unsupported(_))));
    }

    #[test]
    fn replication_is_rejected() {
        let program = CompiledProgram::from_source("process P() { par { <x>! -> skip } }").unwrap();
        let r = ParallelRuntime::builder(program).spawn("P", vec![]).build();
        assert!(matches!(r, Err(RuntimeError::Unsupported(_))));
    }

    #[test]
    fn agrees_with_serial_scheduler() {
        // Pairwise summation: any schedule leaves the same total.
        let src = "process W() {
            loop { exists a, b : <v, a>!, <v, b>! -> <v, a + b> }
        }";
        let expected: i64 = (1..=64).sum();
        let program = CompiledProgram::from_source(src).unwrap();
        for shards in [1usize, 4, 16] {
            let mut b = ParallelRuntime::builder(program.clone())
                .threads(4)
                .shards(shards)
                .seed(3);
            for k in 1..=64i64 {
                b = b.tuple(tuple![Value::atom("v"), k]);
            }
            for _ in 0..4 {
                b = b.spawn("W", vec![]);
            }
            let (report, ds) = b.build().unwrap().run().unwrap();
            assert!(report.outcome.is_completed());
            assert_eq!(ds.len(), 1, "shards={shards}");
            let (_, t) = ds.iter().next().unwrap();
            assert_eq!(t[1], Value::Int(expected), "shards={shards}");
        }
    }

    #[test]
    fn conflict_counter_sees_contention() {
        // Many workers fighting over one hot tuple.
        let src = "process W() {
            loop { exists c : <counter, c>! : c < 200 -> <counter, c + 1> }
        }";
        let program = CompiledProgram::from_source(src).unwrap();
        let mut b = ParallelRuntime::builder(program)
            .threads(4)
            .seed(4)
            .tuple(tuple![Value::atom("counter"), 0i64]);
        for _ in 0..4 {
            b = b.spawn("W", vec![]);
        }
        let (report, ds) = b.build().unwrap().run().unwrap();
        assert!(report.outcome.is_completed());
        assert!(ds.contains_match(&sdl_tuple::pattern![Value::atom("counter"), 200]));
        assert_eq!(report.commits, 200);
    }

    #[test]
    fn shard_commit_metrics_follow_the_partition() {
        // Each drain commit retracts a <job,·> and asserts a <done,·>, so
        // its write footprint is exactly {shard(job), shard(done)} and
        // the per-shard commit counters must sum accordingly.
        let shards = 4usize;
        let s_job = shard_of_tuple(&tuple![Value::atom("job"), 0], shards);
        let s_done = shard_of_tuple(&tuple![Value::atom("done"), 0], shards);
        let per_commit = if s_job == s_done { 1 } else { 2 };
        let (metrics, registry) = Metrics::registry();
        let mut b = ParallelRuntime::builder(job_program())
            .threads(4)
            .shards(shards)
            .seed(7)
            .metrics(metrics);
        for j in 0..100i64 {
            b = b.tuple(tuple![Value::atom("job"), j]);
        }
        for _ in 0..4 {
            b = b.spawn("Worker", vec![]);
        }
        let (report, _) = b.build().unwrap().run().unwrap();
        assert!(report.outcome.is_completed());
        assert_eq!(report.commits, 100);
        let total: u64 = (0..shards)
            .map(|s| registry.shard_counter(s, ShardCounter::Commits))
            .sum();
        assert_eq!(total, 100 * per_commit);
        assert!(registry.shard_counter(s_job, ShardCounter::Commits) >= 100);
        // Untouched shards stay at zero.
        for s in 0..shards {
            if s != s_job && s != s_done {
                assert_eq!(registry.shard_counter(s, ShardCounter::Commits), 0);
            }
        }
    }

    #[test]
    fn metrics_agree_with_report_and_serial_run() {
        // The hot-counter program commits exactly 200 times under ANY
        // schedule, so serial and parallel totals must agree; with many
        // threads on one tuple, validation conflicts are all but certain,
        // but they are timing-dependent — retry a few seeds rather than
        // flake.
        let src = "process W() {
            loop { exists c : <counter, c>! : c < 200 -> <counter, c + 1> }
        }";
        let serial_commits = {
            let program = CompiledProgram::from_source(src).unwrap();
            let mut rt = crate::Runtime::builder(program)
                .tuple(tuple![Value::atom("counter"), 0i64])
                .spawn("W", vec![])
                .build()
                .unwrap();
            let report = rt.run().unwrap();
            report.commits
        };
        assert_eq!(serial_commits, 200);

        for seed in 0..256u64 {
            let (metrics, registry) = Metrics::registry();
            let program = CompiledProgram::from_source(src).unwrap();
            let mut b = ParallelRuntime::builder(program)
                .threads(8)
                .seed(seed)
                .metrics(metrics)
                .tuple(tuple![Value::atom("counter"), 0i64]);
            for _ in 0..8 {
                b = b.spawn("W", vec![]);
            }
            let (report, _) = b.build().unwrap().run().unwrap();
            assert!(report.outcome.is_completed());
            assert_eq!(report.commits, serial_commits);
            assert_eq!(
                registry.counter(Counter::TxnCommittedImmediate),
                report.commits
            );
            assert_eq!(registry.counter(Counter::TxnConflicts), report.conflicts);
            assert!(registry.counter(Counter::TuplesAsserted) > 200);
            assert_eq!(registry.counter(Counter::ProcessesBlocked), 0);
            if report.conflicts > 0 {
                return; // contention observed and accounted for
            }
        }
        panic!("no validation conflicts across 256 seeds of 8-thread contention");
    }
}
