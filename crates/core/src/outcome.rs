//! Run outcomes and statistics.

use std::fmt;

use sdl_tuple::ProcId;

/// How a run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every process terminated.
    Completed,
    /// No process can make progress: the remaining processes are blocked
    /// on delayed or consensus transactions that can never fire. In a
    /// closed simulation this is quiescence; whether it is a bug
    /// (deadlock) or the intended steady state is the program's business.
    Quiescent {
        /// The blocked processes.
        blocked: Vec<ProcId>,
    },
    /// The configured step limit was reached.
    StepLimit,
}

impl Outcome {
    /// True if the run completed with an empty society.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Completed => f.write_str("completed"),
            Outcome::Quiescent { blocked } => {
                write!(f, "quiescent with {} blocked process(es)", blocked.len())
            }
            Outcome::StepLimit => f.write_str("step limit reached"),
        }
    }
}

/// Statistics and outcome of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Transaction attempts (commits + failures + blocked re-checks).
    pub attempts: u64,
    /// Committed transactions (consensus contributions each count once).
    pub commits: u64,
    /// Consensus firings.
    pub consensus_rounds: u64,
    /// Processes created over the whole run (excluding replication-body
    /// helpers).
    pub processes_created: u64,
    /// Parallel rounds (only meaningful for the rounds scheduler; the
    /// serial scheduler reports 0).
    pub rounds: u64,
    /// Tuples in the dataspace at the end.
    pub final_tuples: usize,
}

impl RunReport {
    pub(crate) fn new() -> RunReport {
        RunReport {
            outcome: Outcome::Completed,
            attempts: 0,
            commits: 0,
            consensus_rounds: 0,
            processes_created: 0,
            rounds: 0,
            final_tuples: 0,
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} commits / {} attempts, {} consensus round(s), {} process(es), {} tuple(s) left",
            self.outcome,
            self.commits,
            self.attempts,
            self.consensus_rounds,
            self.processes_created,
            self.final_tuples
        )?;
        if self.rounds > 0 {
            write!(f, ", {} parallel round(s)", self.rounds)?;
        }
        Ok(())
    }
}

/// Caps on a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum transaction attempts before the run stops with
    /// [`Outcome::StepLimit`].
    pub max_attempts: u64,
}

impl Default for RunLimits {
    fn default() -> RunLimits {
        RunLimits {
            max_attempts: 50_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_display() {
        assert_eq!(Outcome::Completed.to_string(), "completed");
        assert!(Outcome::Quiescent {
            blocked: vec![ProcId(1), ProcId(2)]
        }
        .to_string()
        .contains("2 blocked"));
        assert!(Outcome::StepLimit.to_string().contains("limit"));
        assert!(Outcome::Completed.is_completed());
        assert!(!Outcome::StepLimit.is_completed());
    }

    #[test]
    fn report_display() {
        let mut r = RunReport::new();
        r.commits = 5;
        r.attempts = 9;
        let s = r.to_string();
        assert!(s.contains("5 commits"));
        assert!(!s.contains("parallel"), "rounds omitted when 0");
        r.rounds = 3;
        assert!(r.to_string().contains("3 parallel"));
    }

    #[test]
    fn default_limits_are_generous() {
        assert!(RunLimits::default().max_attempts > 1_000_000);
    }
}
