//! Self-tests for the deterministic schedule explorer: known-correct code
//! explores clean, known-buggy code fails with a replayable schedule.

use std::sync::atomic::Ordering;
use std::time::Duration;

use sdl_sync::explore::{choose, Explore};
use sdl_sync::{scope, AtomicU64, Condvar, Mutex};

/// Two threads incrementing under a mutex: every schedule must total 2.
#[test]
fn mutex_exclusion_explores_clean() {
    let report = Explore::new().max_schedules(2_000).run(|| {
        let total = Mutex::new(0u64);
        scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut g = total.lock();
                    *g += 1;
                });
            }
        });
        assert_eq!(*total.lock(), 2);
    });
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert!(report.complete, "exploration should exhaust: {report:?}");
    assert!(
        report.schedules > 1,
        "two contending threads must branch: {report:?}"
    );
}

/// Unsynchronised load/store pair: the classic lost update. The explorer
/// must find the interleaving where one increment vanishes, and the failing
/// schedule must replay to the same failure.
#[test]
fn lost_update_found_and_replays() {
    let body = || {
        let a = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    };
    let report = Explore::new().max_schedules(5_000).run(body);
    let failure = report.failure.expect("explorer must find the lost update");
    assert!(failure.message.contains("lost update"), "{failure}");
    assert!(!failure.schedule.is_empty());

    let replayed = Explore::new()
        .replay(&failure.schedule, body)
        .expect("failing schedule must reproduce under replay");
    assert!(replayed.message.contains("lost update"), "{replayed}");
}

/// ABBA lock ordering: the explorer must detect the deadlock (no enabled
/// thread while two still wait).
#[test]
fn abba_deadlock_detected() {
    let report = Explore::new().max_schedules(5_000).run(|| {
        let m1 = Mutex::new(());
        let m2 = Mutex::new(());
        scope(|s| {
            s.spawn(|| {
                let _a = m1.lock();
                let _b = m2.lock();
            });
            s.spawn(|| {
                let _b = m2.lock();
                let _a = m1.lock();
            });
        });
    });
    let failure = report.failure.expect("ABBA deadlock must be found");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

/// Lost wakeup: the notifier fires before publishing the condition, so the
/// waiter can re-check, see nothing, and sleep forever. Must surface as a
/// deadlock — this is the bug shape the executor's park protocol guards
/// against.
#[test]
fn lost_wakeup_found_as_deadlock() {
    let report = Explore::new().max_schedules(5_000).run(|| {
        let flag = Mutex::new(false);
        let cv = Condvar::new();
        scope(|s| {
            s.spawn(|| {
                let mut g = flag.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            s.spawn(|| {
                // Bug under test: notify before the flag is set.
                cv.notify_one();
                *flag.lock() = true;
            });
        });
    });
    let failure = report.failure.expect("lost wakeup must be found");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

/// The corrected protocol (publish under the lock, then notify) explores
/// clean and exhausts its schedule space.
#[test]
fn correct_wakeup_explores_clean() {
    let report = Explore::new().max_schedules(5_000).run(|| {
        let flag = Mutex::new(false);
        let cv = Condvar::new();
        scope(|s| {
            s.spawn(|| {
                let mut g = flag.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            s.spawn(|| {
                *flag.lock() = true;
                cv.notify_one();
            });
        });
    });
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert!(report.complete, "{report:?}");
}

/// `choose(n)` enumerates every value across schedules.
#[test]
fn choose_enumerates_all_values() {
    let mut seen = [false; 4];
    let report = Explore::new().max_schedules(100).run(|| {
        let v = choose(4);
        seen[v as usize] = true;
    });
    assert!(report.failure.is_none());
    assert!(report.complete);
    assert_eq!(report.schedules, 4, "{report:?}");
    assert!(seen.iter().all(|&b| b), "{seen:?}");
}

/// A preemption bound of 0 only runs threads to completion back-to-back, so
/// the lost update above is *not* found — the bound machinery works.
#[test]
fn preemption_bound_zero_is_serial() {
    let report = Explore::new()
        .max_schedules(1_000)
        .preemption_bound(0)
        .run(|| {
            let a = AtomicU64::new(0);
            scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let v = a.load(Ordering::SeqCst);
                        a.store(v + 1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    assert!(
        report.failure.is_none(),
        "serial schedules cannot lose the update: {}",
        report.failure.unwrap()
    );
}

/// Budgets cap the run and report incompleteness instead of hanging.
#[test]
fn budgets_bound_exploration() {
    let report = Explore::new()
        .max_schedules(3)
        .time_budget(Duration::from_secs(30))
        .run(|| {
            let a = AtomicU64::new(0);
            scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        a.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
    assert!(report.failure.is_none());
    assert_eq!(report.schedules, 3);
    assert!(!report.complete);
}

/// Outside exploration the facade is a plain std wrapper and `choose`
/// short-circuits to 0.
#[test]
fn passthrough_outside_exploration() {
    assert!(!sdl_sync::explore::is_active());
    assert_eq!(choose(5), 0);
    let m = Mutex::new(1);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 2);
    let rw = sdl_sync::RwLock::new(7u32);
    {
        let r1 = rw.read();
        let r2 = rw.read();
        assert_eq!(*r1 + *r2, 14);
    }
    *rw.write() = 9;
    assert_eq!(*rw.read(), 9);
    scope(|s| {
        s.spawn(|| {
            sdl_sync::sleep(Duration::from_millis(1));
        });
    });
}
