//! Tuples, tuple identifiers, and process identifiers.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// Identifies a process in the SDL process society.
///
/// Process id 0 is reserved for the *environment* — the host program that
/// sets up the initial dataspace and society.
///
/// # Examples
///
/// ```
/// use sdl_tuple::ProcId;
/// assert_eq!(ProcId::ENV.to_string(), "p0");
/// assert!(ProcId(3) > ProcId::ENV);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u64);

impl ProcId {
    /// The environment pseudo-process that owns initial tuples.
    pub const ENV: ProcId = ProcId(0);
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The unique identifier of one tuple *instance* in the dataspace.
///
/// The paper: "Each tuple is owned by the process that asserted it and the
/// owner may be determined by examining the unique tuple identifier
/// associated with each tuple." Identifiers pair the owner with a
/// per-dataspace sequence number, so two instances of the same tuple value
/// are distinguishable and "retracting one instance of a tuple may leave
/// other instances of it in the dataspace".
///
/// # Examples
///
/// ```
/// use sdl_tuple::{ProcId, TupleId};
/// let id = TupleId { owner: ProcId(7), seq: 42 };
/// assert_eq!(id.to_string(), "t42@p7");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId {
    /// The process that asserted the tuple.
    pub owner: ProcId,
    /// Dataspace-wide sequence number; unique across the whole run.
    pub seq: u64,
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@{}", self.seq, self.owner)
    }
}

/// An immutable sequence of [`Value`]s — one element of the dataspace
/// multiset.
///
/// Cloning is cheap (`Arc`-backed): the dataspace, windows, and traces all
/// share the same field storage.
///
/// # Examples
///
/// ```
/// use sdl_tuple::{tuple, Tuple, Value};
/// let t = tuple![Value::atom("year"), 87];
/// assert_eq!(t.arity(), 2);
/// assert_eq!(t[1], Value::Int(87));
/// assert_eq!(t.to_string(), "<year, 87>");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    fields: Arc<[Value]>,
}

impl Tuple {
    /// Creates a tuple from its field values.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdl_tuple::{Tuple, Value};
    /// let t = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
    /// assert_eq!(t.arity(), 2);
    /// ```
    pub fn new(fields: Vec<Value>) -> Tuple {
        Tuple {
            fields: fields.into(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// True if the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Returns the field at `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.fields.get(i)
    }

    /// The fields as a slice.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Iterates over the fields.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.fields.iter()
    }

    /// The *functor* of a tuple: its first field if that field is an atom.
    ///
    /// SDL style puts a discriminating symbol first (`<label, p, l>`,
    /// `<threshold, p, t>`); the dataspace indexes on it.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdl_tuple::{tuple, Atom, Value};
    /// assert_eq!(tuple![Value::atom("label"), 3].functor(), Some(Atom::new("label")));
    /// assert_eq!(tuple![Value::Int(1), 3].functor(), None);
    /// ```
    pub fn functor(&self) -> Option<crate::Atom> {
        self.fields.first().and_then(Value::as_atom)
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.fields[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(">")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(fields: Vec<Value>) -> Tuple {
        Tuple::new(fields)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        Tuple::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.fields.iter()
    }
}

/// A tuple instance: a tuple value paired with its unique identifier.
///
/// The dataspace stores instances; queries and windows traffic in them so
/// retraction can name the exact instance matched.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TupleInstance {
    /// The unique identifier of this instance.
    pub id: TupleId,
    /// The tuple value.
    pub tuple: Tuple,
}

impl TupleInstance {
    /// Pairs a tuple with its identifier.
    pub fn new(id: TupleId, tuple: Tuple) -> TupleInstance {
        TupleInstance { id, tuple }
    }
}

impl fmt::Display for TupleInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.tuple, self.id)
    }
}

/// Builds a [`Tuple`] from field expressions, each convertible to
/// [`Value`].
///
/// # Examples
///
/// ```
/// use sdl_tuple::{tuple, Value};
/// let t = tuple![Value::atom("year"), 87];
/// assert_eq!(t.to_string(), "<year, 87>");
/// let empty = tuple![];
/// assert_eq!(empty.arity(), 0);
/// ```
#[macro_export]
macro_rules! tuple {
    () => { $crate::Tuple::new(::std::vec::Vec::new()) };
    ($($field:expr),+ $(,)?) => {
        $crate::Tuple::new(::std::vec![$($crate::Value::from($field)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::new(vec![Value::atom("a"), Value::Int(1)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::atom("a"));
        assert_eq!(t.get(1), Some(&Value::Int(1)));
        assert_eq!(t.get(2), None);
        assert!(!t.is_empty());
        assert!(tuple![].is_empty());
    }

    #[test]
    fn macro_and_from() {
        let t = tuple![Value::atom("k"), 3, true];
        assert_eq!(t.fields().len(), 3);
        let u: Tuple = vec![Value::Int(1)].into();
        assert_eq!(u.arity(), 1);
        let w: Tuple = [Value::Int(2)].into_iter().collect();
        assert_eq!(w[0], Value::Int(2));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(tuple![Value::atom("year"), 87].to_string(), "<year, 87>");
        assert_eq!(tuple![].to_string(), "<>");
    }

    #[test]
    fn functor_is_leading_atom() {
        assert_eq!(
            tuple![Value::atom("label"), 1, 2].functor(),
            Some(crate::Atom::new("label"))
        );
        assert_eq!(tuple![Value::Int(9)].functor(), None);
        assert_eq!(tuple![].functor(), None);
    }

    #[test]
    fn instance_display() {
        let inst = TupleInstance::new(
            TupleId {
                owner: ProcId(2),
                seq: 9,
            },
            tuple![Value::Int(1)],
        );
        assert_eq!(inst.to_string(), "<1>#t9@p2");
    }

    #[test]
    fn equal_tuples_compare_equal_regardless_of_storage() {
        let a = tuple![Value::Int(1), Value::Int(2)];
        let b = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(a, b);
        let mut v = [b, a];
        v.sort();
        assert_eq!(v[0], v[1]);
    }

    #[test]
    fn iteration() {
        let t = tuple![1, 2, 3];
        let sum: i64 = t.iter().filter_map(Value::as_int).sum();
        assert_eq!(sum, 6);
        let sum2: i64 = (&t).into_iter().filter_map(Value::as_int).sum();
        assert_eq!(sum2, 6);
    }
}
