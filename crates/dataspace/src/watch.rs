//! Conservative change-notification keys for delayed-transaction wake-up.
//!
//! A *delayed* transaction that fails stays blocked until "a successful
//! evaluation is possible". Re-evaluating every blocked transaction after
//! every commit is correct but wasteful; instead each commit publishes the
//! [`WatchKey`]s of the tuples it asserted or retracted, and each blocked
//! transaction registers the keys of the patterns it mentions. A blocked
//! transaction is re-examined only when the key sets intersect. The scheme
//! is conservative (may wake a transaction that still fails) and complete
//! (never misses an enabling change), which preserves the paper's weak
//! fairness guarantee.
//!
//! Patterns with an atom head and a constant argument can subscribe to an
//! *exact* [`WatchKey::Value`] channel instead: publication emits a value
//! key per argument slot, so a transaction blocked on `<count, 7, α>`
//! wakes only when an arity-3 `count` tuple whose second field hashes to
//! `7`'s hash changes — not on every `count` change. Exact keys remain
//! complete (any matching tuple publishes the subscribed key) while
//! shrinking the wake fan-out by the relation's value diversity.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use sdl_tuple::{Atom, Field, Pattern, Tuple, Value};

/// A coarse description of which tuples a change could affect.
///
/// `Ord` exists so callers that fan out over a `WatchSet`'s hash-ordered
/// keys can sort first: wake scans must visit keys in a deterministic
/// order or schedule exploration could not replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WatchKey {
    /// Tuples with this leading atom and arity.
    Functor(Atom, usize),
    /// Any tuple of this arity (patterns with a non-constant head).
    Arity(usize),
    /// Tuples with this leading atom and arity whose argument at `slot`
    /// (1-based field position) hashes to the given value — the exact
    /// channel for patterns like `<count, 7, α>`, which need not wake on
    /// every `count` change, only those whose second field is `7`.
    Value(Atom, usize, usize, u64),
}

/// Deterministic hash of one tuple/pattern field value, shared by the
/// publication ([`WatchKey::of_tuple`]) and subscription
/// ([`WatchKey::value_of_pattern`]) sides — both must agree bit-for-bit
/// or wakeups would be missed.
pub fn value_hash(v: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl WatchKey {
    /// The keys published when `tuple` is asserted or retracted.
    ///
    /// A tuple notifies its functor key (if its head is an atom), its
    /// arity key (a variable-headed pattern of the same arity could match
    /// it), and one [`WatchKey::Value`] key per argument slot so that
    /// value-subscribed patterns wake exactly.
    pub fn of_tuple(tuple: &Tuple) -> impl Iterator<Item = WatchKey> + '_ {
        let arity = tuple.arity();
        let functor = tuple.functor();
        let values = functor.into_iter().flat_map(move |f| {
            (1..arity)
                .map(move |slot| WatchKey::Value(f, arity, slot, value_hash(&tuple.fields()[slot])))
        });
        functor
            .map(|f| WatchKey::Functor(f, arity))
            .into_iter()
            .chain(std::iter::once(WatchKey::Arity(arity)))
            .chain(values)
    }

    /// The single conservative key a pattern listens on.
    ///
    /// A pattern with a constant atom head listens on its functor key;
    /// anything else listens on the arity key (which every tuple of that
    /// arity also publishes).
    pub fn of_pattern(pattern: &Pattern) -> WatchKey {
        match pattern.functor() {
            Some(f) => WatchKey::Functor(f, pattern.arity()),
            None => WatchKey::Arity(pattern.arity()),
        }
    }

    /// The exact value-level key for `pattern`, if one exists: the
    /// pattern must have an atom head and at least one constant argument
    /// slot. Slot 1 is preferred (it aligns with the store's arg1 point
    /// index); otherwise the first constant slot is used.
    ///
    /// Subscribing to this key alone is *complete* for the pattern: any
    /// tuple that matches it must carry the same atom head, arity, and
    /// constant value at that slot, and every such tuple publishes the
    /// identical key from [`WatchKey::of_tuple`].
    pub fn value_of_pattern(pattern: &Pattern) -> Option<WatchKey> {
        let f = pattern.functor()?;
        let arity = pattern.arity();
        pattern
            .fields()
            .iter()
            .enumerate()
            .skip(1)
            .find_map(|(slot, field)| match field {
                Field::Const(v) => Some(WatchKey::Value(f, arity, slot, value_hash(v))),
                _ => None,
            })
    }

    /// A compact human-readable label for trace output: `count/3`,
    /// `*/2` (arity key), or `count/3[1]#1a2b` (value key with a
    /// truncated hash of the watched slot value).
    pub fn label(&self) -> String {
        match *self {
            WatchKey::Functor(f, a) => format!("{f}/{a}"),
            WatchKey::Arity(a) => format!("*/{a}"),
            WatchKey::Value(f, a, slot, h) => format!("{f}/{a}[{slot}]#{:04x}", h & 0xffff),
        }
    }

    /// The coarse `(functor, arity)` channel this key belongs to. Two
    /// keys on the same channel describe tuples of the same relation even
    /// when their exact value slots differ — the stall watchdog uses this
    /// to report *nearest-miss* commits: traffic on a parked process's
    /// relation that did not carry the watched value.
    pub fn channel(&self) -> (Option<Atom>, usize) {
        match *self {
            WatchKey::Functor(f, a) => (Some(f), a),
            WatchKey::Arity(a) => (None, a),
            WatchKey::Value(f, a, _, _) => (Some(f), a),
        }
    }
}

/// A set of [`WatchKey`]s, with the subscription-side closure applied.
///
/// Subscribing to a `Functor(f, n)` key also subscribes to `Arity(n)`
/// *matches from publications*: publication emits both keys, so plain set
/// intersection suffices. The extra subtlety is a pattern whose head field
/// is a **constant non-atom** (e.g. `<3, α>`): it has no functor, so it
/// listens on `Arity(n)` and every arity-`n` publication wakes it.
///
/// # Examples
///
/// ```
/// use sdl_dataspace::{WatchKey, WatchSet};
/// use sdl_tuple::{pattern, tuple, Value};
///
/// let mut listening = WatchSet::new();
/// listening.add_pattern(&pattern![Value::atom("year"), any]);
///
/// let mut published = WatchSet::new();
/// published.add_tuple(&tuple![Value::atom("year"), 87]);
/// assert!(listening.intersects(&published));
///
/// let mut other = WatchSet::new();
/// other.add_tuple(&tuple![Value::atom("month"), 5]);
/// assert!(!listening.intersects(&other));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WatchSet {
    keys: HashSet<WatchKey>,
}

impl WatchSet {
    /// Creates an empty watch set.
    pub fn new() -> WatchSet {
        WatchSet::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no keys are present.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Subscribes to the conservative key of `pattern`.
    pub fn add_pattern(&mut self, pattern: &Pattern) {
        self.keys.insert(WatchKey::of_pattern(pattern));
        // A constant non-atom head still needs the arity channel; a
        // wildcard/variable head already *is* the arity channel.
        if matches!(pattern.fields().first(), Some(Field::Const(_))) && pattern.functor().is_none()
        {
            self.keys.insert(WatchKey::Arity(pattern.arity()));
        }
    }

    /// Subscribes to the *exact* value-level key of `pattern` when one
    /// exists ([`WatchKey::value_of_pattern`]), falling back to the
    /// conservative keys otherwise. Exactness narrows wakeups without
    /// losing completeness: tuples publish a value key per argument slot.
    pub fn add_pattern_exact(&mut self, pattern: &Pattern) {
        match WatchKey::value_of_pattern(pattern) {
            Some(k) => {
                self.keys.insert(k);
            }
            None => self.add_pattern(pattern),
        }
    }

    /// Publishes the keys of `tuple`.
    pub fn add_tuple(&mut self, tuple: &Tuple) {
        self.keys.extend(WatchKey::of_tuple(tuple));
    }

    /// Inserts a raw key.
    pub fn add_key(&mut self, key: WatchKey) {
        self.keys.insert(key);
    }

    /// Merges another set into this one.
    pub fn extend(&mut self, other: &WatchSet) {
        self.keys.extend(other.keys.iter().copied());
    }

    /// True if the two sets share a key.
    pub fn intersects(&self, other: &WatchSet) -> bool {
        let (small, large) = if self.keys.len() <= other.keys.len() {
            (&self.keys, &other.keys)
        } else {
            (&other.keys, &self.keys)
        };
        small.iter().any(|k| large.contains(k))
    }

    /// Iterates over the keys.
    pub fn iter(&self) -> impl Iterator<Item = &WatchKey> {
        self.keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_tuple::{pattern, tuple, Value};

    #[test]
    fn tuple_publishes_functor_arity_and_value_keys() {
        let t = tuple![Value::atom("label"), 1, 2];
        let keys: Vec<WatchKey> = WatchKey::of_tuple(&t).collect();
        assert_eq!(keys.len(), 4, "functor + arity + one value key per arg");
        let f = sdl_tuple::Atom::new("label");
        assert!(keys.contains(&WatchKey::Functor(f, 3)));
        assert!(keys.contains(&WatchKey::Arity(3)));
        assert!(keys.contains(&WatchKey::Value(f, 3, 1, value_hash(&Value::Int(1)))));
        assert!(keys.contains(&WatchKey::Value(f, 3, 2, value_hash(&Value::Int(2)))));
    }

    #[test]
    fn value_subscription_wakes_only_on_matching_value() {
        let mut sub = WatchSet::new();
        sub.add_pattern_exact(&pattern![Value::atom("count"), 7, var 0]);
        assert_eq!(sub.len(), 1, "exact pattern subscribes one value key");

        let mut hit = WatchSet::new();
        hit.add_tuple(&tuple![Value::atom("count"), 7, 99]);
        assert!(sub.intersects(&hit));

        let mut miss = WatchSet::new();
        miss.add_tuple(&tuple![Value::atom("count"), 8, 99]);
        assert!(!sub.intersects(&miss), "other values must not wake it");

        let mut other_rel = WatchSet::new();
        other_rel.add_tuple(&tuple![Value::atom("tally"), 7, 99]);
        assert!(!sub.intersects(&other_rel));

        let mut other_arity = WatchSet::new();
        other_arity.add_tuple(&tuple![Value::atom("count"), 7]);
        assert!(!sub.intersects(&other_arity));
    }

    #[test]
    fn exact_subscription_falls_back_without_const_args() {
        let mut sub = WatchSet::new();
        sub.add_pattern_exact(&pattern![Value::atom("count"), var 0, var 1]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![Value::atom("count"), 1, 2]);
        assert!(sub.intersects(&change), "functor fallback still wakes");
        assert_eq!(
            WatchKey::value_of_pattern(&pattern![Value::atom("count"), var 0, var 1]),
            None
        );
        // Non-atom heads fall back too (no functor to key on).
        assert_eq!(WatchKey::value_of_pattern(&pattern![3, 4]), None);
    }

    #[test]
    fn value_key_prefers_slot_one() {
        let p = pattern![Value::atom("edge"), var 0, 5];
        match WatchKey::value_of_pattern(&p) {
            Some(WatchKey::Value(f, 3, 2, h)) => {
                assert_eq!(f, sdl_tuple::Atom::new("edge"));
                assert_eq!(h, value_hash(&Value::Int(5)));
            }
            other => panic!("expected slot-2 value key, got {other:?}"),
        }
        let p1 = pattern![Value::atom("edge"), 4, 5];
        match WatchKey::value_of_pattern(&p1) {
            Some(WatchKey::Value(_, 3, 1, h)) => assert_eq!(h, value_hash(&Value::Int(4))),
            other => panic!("expected slot-1 value key, got {other:?}"),
        }
    }

    #[test]
    fn non_atom_head_publishes_arity_only() {
        let t = tuple![1, 2];
        let keys: Vec<WatchKey> = WatchKey::of_tuple(&t).collect();
        assert_eq!(keys, vec![WatchKey::Arity(2)]);
    }

    #[test]
    fn functor_pattern_wakes_on_matching_functor() {
        let mut sub = WatchSet::new();
        sub.add_pattern(&pattern![Value::atom("year"), any]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![Value::atom("year"), 87]);
        assert!(sub.intersects(&change));
    }

    #[test]
    fn functor_pattern_ignores_other_functor_same_arity() {
        let mut sub = WatchSet::new();
        sub.add_pattern(&pattern![Value::atom("year"), any]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![Value::atom("month"), 5]);
        assert!(!sub.intersects(&change));
    }

    #[test]
    fn variable_head_pattern_wakes_on_any_same_arity() {
        let mut sub = WatchSet::new();
        sub.add_pattern(&pattern![var 0, any]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![Value::atom("anything"), 1]);
        assert!(sub.intersects(&change));
        let mut change2 = WatchSet::new();
        change2.add_tuple(&tuple![7, 8]);
        assert!(sub.intersects(&change2));
        let mut wrong_arity = WatchSet::new();
        wrong_arity.add_tuple(&tuple![1, 2, 3]);
        assert!(!sub.intersects(&wrong_arity));
    }

    #[test]
    fn const_int_head_listens_on_arity() {
        // <3, α> has no functor; any arity-2 change must wake it.
        let mut sub = WatchSet::new();
        sub.add_pattern(&pattern![3, var 0]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![3, 9]);
        assert!(sub.intersects(&change));
        let mut change_atom = WatchSet::new();
        change_atom.add_tuple(&tuple![Value::atom("x"), 9]);
        assert!(sub.intersects(&change_atom), "conservative wake");
    }

    #[test]
    fn set_operations() {
        let mut a = WatchSet::new();
        assert!(a.is_empty());
        a.add_key(WatchKey::Arity(2));
        assert_eq!(a.len(), 1);
        let mut b = WatchSet::new();
        b.add_key(WatchKey::Arity(3));
        assert!(!a.intersects(&b));
        b.extend(&a);
        assert!(a.intersects(&b));
        assert_eq!(b.iter().count(), 2);
    }
}
