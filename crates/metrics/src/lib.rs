//! Runtime metrics for the SDL schedulers and dataspace.
//!
//! The design goal is *near-zero cost when disabled*: every instrumentation
//! site goes through a [`Metrics`] handle, which is a single
//! `Option<Arc<dyn MetricsSink>>`. Disabled metrics are one branch on a
//! `None`; enabled metrics are a relaxed atomic increment in
//! [`MetricsRegistry`]. Nothing here allocates on the hot path.
//!
//! Metric identity is a closed enum rather than string names:
//! [`Counter`] flattens the Prometheus (name, labels) pair into one
//! discriminant (e.g. [`Counter::TxnCommittedConsensus`] renders as
//! `sdl_txn_committed_total{mode="consensus"}`), so recording a metric is
//! an array index, not a hash lookup. [`Hist`] does the same for the three
//! fixed-bucket histograms.
//!
//! [`MetricsRegistry::render_prometheus`] produces the standard text
//! exposition format (`# HELP` / `# TYPE` + one line per series), which
//! `sdl-run --metrics` prints after a run.
//!
//! This crate is std-only and sits below `sdl-dataspace` in the dependency
//! graph so the store and solver can count without cycles.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Every counter the runtime records, flattened over its label values.
///
/// Order is the exposition order; keep families (same metric name)
/// contiguous so `render_prometheus` emits one `# HELP`/`# TYPE` header per
/// family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// `sdl_txn_attempts_total{mode="immediate"}`
    TxnAttemptsImmediate,
    /// `sdl_txn_attempts_total{mode="delayed"}`
    TxnAttemptsDelayed,
    /// `sdl_txn_attempts_total{mode="consensus"}`
    TxnAttemptsConsensus,
    /// `sdl_txn_committed_total{mode="immediate"}`
    TxnCommittedImmediate,
    /// `sdl_txn_committed_total{mode="delayed"}`
    TxnCommittedDelayed,
    /// `sdl_txn_committed_total{mode="consensus"}`
    TxnCommittedConsensus,
    /// `sdl_txn_failed_total{mode="immediate"}`
    TxnFailedImmediate,
    /// `sdl_txn_failed_total{mode="delayed"}`
    TxnFailedDelayed,
    /// `sdl_txn_failed_total{mode="consensus"}`
    TxnFailedConsensus,
    /// Optimistic validation failures in the parallel runtime.
    TxnConflicts,
    /// Tuples added to the dataspace.
    TuplesAsserted,
    /// Tuples removed from the dataspace.
    TuplesRetracted,
    /// Asserts suppressed by a view's export filter.
    ExportDropped,
    /// Dataspace version-counter increments.
    StoreVersionBumps,
    /// Candidate lookups served by the (functor, arity, arg1) index.
    IndexHitArg1,
    /// Candidate lookups served by the (functor, arity) index.
    IndexHitFunctor,
    /// Candidate lookups served by the arity index.
    IndexHitArity,
    /// Candidate lookups served by a single-position value point index.
    IndexHitValue,
    /// Candidate lookups answered by intersecting two point indexes.
    IndexHitIntersect,
    /// Candidate lookups that fell back to a full scan.
    IndexScanFull,
    /// Pattern-match tests performed by the solver.
    MatchAttempts,
    /// Candidate tuples enumerated by the solver.
    MatchCandidates,
    /// Solver binding rollbacks (one per exhausted candidate).
    SolverBacktracks,
    /// `sdl_plan_cache_total{event="hit"}`
    PlanCacheHit,
    /// `sdl_plan_cache_total{event="miss"}`
    PlanCacheMiss,
    /// `sdl_plan_cache_total{event="replan"}`
    PlanReplans,
    /// Query windows (views) constructed.
    WindowsBuilt,
    /// Import-clause admission tests on lazy windows.
    WindowAdmitChecks,
    /// Processes that entered the blocked set.
    ProcessesBlocked,
    /// `sdl_wakeups_total{cause="commit"}`
    WakeupCommit,
    /// `sdl_wakeups_total{cause="consensus"}`
    WakeupConsensus,
    /// `sdl_wakes_total{result="progress"}` — a woken process committed
    /// before blocking again.
    WakeProgress,
    /// `sdl_wakes_total{result="spurious"}` — a woken process re-blocked
    /// without committing (the wake key matched but the query still
    /// failed).
    WakeSpurious,
    /// Consensus transactions fired.
    ConsensusRounds,
    /// Processes spawned.
    ProcessesSpawned,
    /// Events dropped by a bounded event log or a streaming sink.
    EventsDropped,
    /// Commit records appended to the write-ahead log.
    WalRecords,
    /// Bytes appended to the write-ahead log (frame headers included).
    WalBytes,
    /// Commit records replayed during crash recovery.
    RecoveryRecordsReplayed,
    /// Torn WAL tails truncated at the first bad CRC during recovery.
    WalTornTailTruncations,
    /// `sdl_net_requests_total{op="out"}`
    NetReqOut,
    /// `sdl_net_requests_total{op="in"}`
    NetReqIn,
    /// `sdl_net_requests_total{op="rd"}`
    NetReqRd,
    /// `sdl_net_requests_total{op="inp"}`
    NetReqInp,
    /// `sdl_net_requests_total{op="rdp"}`
    NetReqRdp,
    /// `sdl_net_requests_total{op="txn"}`
    NetReqTxn,
    /// `sdl_net_requests_total{op="other"}` — pings, cancels, and any
    /// other housekeeping frame.
    NetReqOther,
    /// Transitions into backpressure: the server stopped reading from
    /// one or all connections (engine saturated or write buffer full).
    NetBackpressureStalls,
    /// Frames rejected by the wire decoder (bad magic, CRC mismatch,
    /// over-limit length, malformed payload).
    NetProtocolErrors,
    /// Commit records shipped to replication followers.
    ReplShippedRecords,
    /// Bytes shipped to replication followers (frame headers included).
    ReplShippedBytes,
    /// Shipped commit records applied by this follower.
    ReplRecordsApplied,
    /// Snapshot bootstraps served to (leader) or performed by
    /// (follower) replication peers.
    ReplSnapshotBootstraps,
    /// Write requests rejected by a follower with a `NotLeader`
    /// redirect.
    ReplNotLeaderRedirects,
}

impl Counter {
    /// All counters in exposition order.
    pub const ALL: [Counter; 54] = [
        Counter::TxnAttemptsImmediate,
        Counter::TxnAttemptsDelayed,
        Counter::TxnAttemptsConsensus,
        Counter::TxnCommittedImmediate,
        Counter::TxnCommittedDelayed,
        Counter::TxnCommittedConsensus,
        Counter::TxnFailedImmediate,
        Counter::TxnFailedDelayed,
        Counter::TxnFailedConsensus,
        Counter::TxnConflicts,
        Counter::TuplesAsserted,
        Counter::TuplesRetracted,
        Counter::ExportDropped,
        Counter::StoreVersionBumps,
        Counter::IndexHitArg1,
        Counter::IndexHitFunctor,
        Counter::IndexHitArity,
        Counter::IndexHitValue,
        Counter::IndexHitIntersect,
        Counter::IndexScanFull,
        Counter::MatchAttempts,
        Counter::MatchCandidates,
        Counter::SolverBacktracks,
        Counter::PlanCacheHit,
        Counter::PlanCacheMiss,
        Counter::PlanReplans,
        Counter::WindowsBuilt,
        Counter::WindowAdmitChecks,
        Counter::ProcessesBlocked,
        Counter::WakeupCommit,
        Counter::WakeupConsensus,
        Counter::WakeProgress,
        Counter::WakeSpurious,
        Counter::ConsensusRounds,
        Counter::ProcessesSpawned,
        Counter::EventsDropped,
        Counter::WalRecords,
        Counter::WalBytes,
        Counter::RecoveryRecordsReplayed,
        Counter::WalTornTailTruncations,
        Counter::NetReqOut,
        Counter::NetReqIn,
        Counter::NetReqRd,
        Counter::NetReqInp,
        Counter::NetReqRdp,
        Counter::NetReqTxn,
        Counter::NetReqOther,
        Counter::NetBackpressureStalls,
        Counter::NetProtocolErrors,
        Counter::ReplShippedRecords,
        Counter::ReplShippedBytes,
        Counter::ReplRecordsApplied,
        Counter::ReplSnapshotBootstraps,
        Counter::ReplNotLeaderRedirects,
    ];

    /// Number of distinct counters.
    pub const COUNT: usize = Counter::ALL.len();

    /// The Prometheus metric name (family).
    pub fn name(self) -> &'static str {
        match self {
            Counter::TxnAttemptsImmediate
            | Counter::TxnAttemptsDelayed
            | Counter::TxnAttemptsConsensus => "sdl_txn_attempts_total",
            Counter::TxnCommittedImmediate
            | Counter::TxnCommittedDelayed
            | Counter::TxnCommittedConsensus => "sdl_txn_committed_total",
            Counter::TxnFailedImmediate
            | Counter::TxnFailedDelayed
            | Counter::TxnFailedConsensus => "sdl_txn_failed_total",
            Counter::TxnConflicts => "sdl_txn_conflicts_total",
            Counter::TuplesAsserted => "sdl_tuples_asserted_total",
            Counter::TuplesRetracted => "sdl_tuples_retracted_total",
            Counter::ExportDropped => "sdl_export_dropped_total",
            Counter::StoreVersionBumps => "sdl_store_version_bumps_total",
            Counter::IndexHitArg1
            | Counter::IndexHitFunctor
            | Counter::IndexHitArity
            | Counter::IndexHitValue
            | Counter::IndexHitIntersect
            | Counter::IndexScanFull => "sdl_index_lookups_total",
            Counter::MatchAttempts => "sdl_match_attempts_total",
            Counter::MatchCandidates => "sdl_match_candidates_total",
            Counter::SolverBacktracks => "sdl_solver_backtracks_total",
            Counter::PlanCacheHit | Counter::PlanCacheMiss | Counter::PlanReplans => {
                "sdl_plan_cache_total"
            }
            Counter::WindowsBuilt => "sdl_windows_built_total",
            Counter::WindowAdmitChecks => "sdl_window_admit_checks_total",
            Counter::ProcessesBlocked => "sdl_process_blocked_total",
            Counter::WakeupCommit | Counter::WakeupConsensus => "sdl_wakeups_total",
            Counter::WakeProgress | Counter::WakeSpurious => "sdl_wakes_total",
            Counter::ConsensusRounds => "sdl_consensus_rounds_total",
            Counter::ProcessesSpawned => "sdl_processes_spawned_total",
            Counter::EventsDropped => "sdl_events_dropped_total",
            Counter::WalRecords => "sdl_wal_records_total",
            Counter::WalBytes => "sdl_wal_bytes_total",
            Counter::RecoveryRecordsReplayed => "sdl_recovery_records_replayed_total",
            Counter::WalTornTailTruncations => "sdl_wal_torn_tail_truncations_total",
            Counter::NetReqOut
            | Counter::NetReqIn
            | Counter::NetReqRd
            | Counter::NetReqInp
            | Counter::NetReqRdp
            | Counter::NetReqTxn
            | Counter::NetReqOther => "sdl_net_requests_total",
            Counter::NetBackpressureStalls => "sdl_net_backpressure_stalls_total",
            Counter::NetProtocolErrors => "sdl_net_protocol_errors_total",
            Counter::ReplShippedRecords => "sdl_repl_shipped_records_total",
            Counter::ReplShippedBytes => "sdl_repl_shipped_bytes_total",
            Counter::ReplRecordsApplied => "sdl_repl_records_applied_total",
            Counter::ReplSnapshotBootstraps => "sdl_repl_snapshot_bootstraps_total",
            Counter::ReplNotLeaderRedirects => "sdl_repl_not_leader_redirects_total",
        }
    }

    /// The label set rendered inside `{...}`, or `""` for unlabeled series.
    pub fn labels(self) -> &'static str {
        match self {
            Counter::TxnAttemptsImmediate
            | Counter::TxnCommittedImmediate
            | Counter::TxnFailedImmediate => "mode=\"immediate\"",
            Counter::TxnAttemptsDelayed
            | Counter::TxnCommittedDelayed
            | Counter::TxnFailedDelayed => "mode=\"delayed\"",
            Counter::TxnAttemptsConsensus
            | Counter::TxnCommittedConsensus
            | Counter::TxnFailedConsensus => "mode=\"consensus\"",
            Counter::IndexHitArg1 => "index=\"arg1\"",
            Counter::IndexHitFunctor => "index=\"functor\"",
            Counter::IndexHitArity => "index=\"arity\"",
            Counter::IndexHitValue => "index=\"value\"",
            Counter::IndexHitIntersect => "index=\"intersect\"",
            Counter::IndexScanFull => "index=\"scan\"",
            Counter::PlanCacheHit => "event=\"hit\"",
            Counter::PlanCacheMiss => "event=\"miss\"",
            Counter::PlanReplans => "event=\"replan\"",
            Counter::WakeupCommit => "cause=\"commit\"",
            Counter::WakeupConsensus => "cause=\"consensus\"",
            Counter::WakeProgress => "result=\"progress\"",
            Counter::WakeSpurious => "result=\"spurious\"",
            Counter::NetReqOut => "op=\"out\"",
            Counter::NetReqIn => "op=\"in\"",
            Counter::NetReqRd => "op=\"rd\"",
            Counter::NetReqInp => "op=\"inp\"",
            Counter::NetReqRdp => "op=\"rdp\"",
            Counter::NetReqTxn => "op=\"txn\"",
            Counter::NetReqOther => "op=\"other\"",
            _ => "",
        }
    }

    /// Help text for the metric family.
    pub fn help(self) -> &'static str {
        match self {
            Counter::TxnAttemptsImmediate
            | Counter::TxnAttemptsDelayed
            | Counter::TxnAttemptsConsensus => "Transaction guard evaluations, by mode.",
            Counter::TxnCommittedImmediate
            | Counter::TxnCommittedDelayed
            | Counter::TxnCommittedConsensus => "Transactions committed, by mode.",
            Counter::TxnFailedImmediate
            | Counter::TxnFailedDelayed
            | Counter::TxnFailedConsensus => "Transaction attempts whose guard failed, by mode.",
            Counter::TxnConflicts => {
                "Optimistic transactions rolled back after validation failure."
            }
            Counter::TuplesAsserted => "Tuples asserted into the dataspace.",
            Counter::TuplesRetracted => "Tuples retracted from the dataspace.",
            Counter::ExportDropped => "Asserts suppressed by a view's export filter.",
            Counter::StoreVersionBumps => "Dataspace version increments (mutations).",
            Counter::IndexHitArg1
            | Counter::IndexHitFunctor
            | Counter::IndexHitArity
            | Counter::IndexHitValue
            | Counter::IndexHitIntersect
            | Counter::IndexScanFull => "Candidate lookups, by index used.",
            Counter::MatchAttempts => "Tuple pattern-match tests performed by the solver.",
            Counter::MatchCandidates => "Candidate tuples enumerated by the solver.",
            Counter::SolverBacktracks => "Solver binding rollbacks during search.",
            Counter::PlanCacheHit | Counter::PlanCacheMiss | Counter::PlanReplans => {
                "Query-plan cache lookups, by event."
            }
            Counter::WindowsBuilt => "Query windows (view intersections) constructed.",
            Counter::WindowAdmitChecks => "Import-clause admission tests on lazy windows.",
            Counter::ProcessesBlocked => "Processes that entered the blocked set.",
            Counter::WakeupCommit | Counter::WakeupConsensus => {
                "Blocked-process wakeups, by cause."
            }
            Counter::WakeProgress | Counter::WakeSpurious => {
                "Wake outcomes: the woken process committed (progress) or re-blocked (spurious)."
            }
            Counter::ConsensusRounds => "Consensus transactions fired.",
            Counter::ProcessesSpawned => "Processes spawned.",
            Counter::EventsDropped => "Events dropped by a bounded log or streaming sink.",
            Counter::WalRecords => "Commit records appended to the write-ahead log.",
            Counter::WalBytes => "Bytes appended to the write-ahead log.",
            Counter::RecoveryRecordsReplayed => "Commit records replayed during crash recovery.",
            Counter::WalTornTailTruncations => {
                "Torn WAL tails truncated at the first bad CRC during recovery."
            }
            Counter::NetReqOut
            | Counter::NetReqIn
            | Counter::NetReqRd
            | Counter::NetReqInp
            | Counter::NetReqRdp
            | Counter::NetReqTxn
            | Counter::NetReqOther => "Wire-protocol requests decoded, by operation.",
            Counter::NetBackpressureStalls => {
                "Transitions into backpressure (server paused reads on saturated state)."
            }
            Counter::NetProtocolErrors => "Frames rejected by the wire decoder.",
            Counter::ReplShippedRecords => "Commit records shipped to replication followers.",
            Counter::ReplShippedBytes => "Bytes shipped to replication followers.",
            Counter::ReplRecordsApplied => "Shipped commit records applied by this follower.",
            Counter::ReplSnapshotBootstraps => {
                "Snapshot bootstraps served to or performed by replication peers."
            }
            Counter::ReplNotLeaderRedirects => {
                "Write requests a follower rejected with a NotLeader redirect."
            }
        }
    }
}

/// The runtime's fixed-bucket histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Wall-clock seconds per transaction guard evaluation.
    QueryEvalSeconds,
    /// Tuples admitted per constructed window.
    WindowSize,
    /// Wall-clock seconds a process spent blocked before waking.
    BlockedSeconds,
    /// Wall-clock seconds spent acquiring shard locks (per footprint
    /// acquisition, summed over the shards in the footprint).
    ShardLockWaitSeconds,
    /// Wall-clock seconds per write-ahead-log fsync.
    WalFsyncSeconds,
    /// Wall-clock seconds spent building a committed transaction's effect
    /// set (substituting bindings into asserts/retracts) after the guard
    /// succeeded.
    EffectsBuildSeconds,
    /// Wall-clock seconds spent inside the commit critical section
    /// (validation + batch application + WAL append, under write locks in
    /// the threaded executor).
    CommitApplySeconds,
    /// Requests committed per engine batch by the networked server (one
    /// observation per `apply_batch` flush).
    NetBatchSize,
    /// Wall-clock seconds a follower spent applying one shipped commit
    /// record (store mutation + wake scan, under the write footprint).
    ReplApplySeconds,
}

const LATENCY_BUCKETS: &[f64] = &[
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1e-3, 4e-3, 1.6e-2, 6.4e-2, 0.25, 1.0,
];
const SIZE_BUCKETS: &[f64] = &[
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0,
];

impl Hist {
    /// All histograms in exposition order.
    pub const ALL: [Hist; 9] = [
        Hist::QueryEvalSeconds,
        Hist::WindowSize,
        Hist::BlockedSeconds,
        Hist::ShardLockWaitSeconds,
        Hist::WalFsyncSeconds,
        Hist::EffectsBuildSeconds,
        Hist::CommitApplySeconds,
        Hist::NetBatchSize,
        Hist::ReplApplySeconds,
    ];

    /// Number of distinct histograms.
    pub const COUNT: usize = Hist::ALL.len();

    /// The Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::QueryEvalSeconds => "sdl_query_eval_seconds",
            Hist::WindowSize => "sdl_window_size",
            Hist::BlockedSeconds => "sdl_process_blocked_seconds",
            Hist::ShardLockWaitSeconds => "sdl_shard_lock_wait_seconds",
            Hist::WalFsyncSeconds => "sdl_wal_fsync_seconds",
            Hist::EffectsBuildSeconds => "sdl_effects_build_seconds",
            Hist::CommitApplySeconds => "sdl_commit_apply_seconds",
            Hist::NetBatchSize => "sdl_net_batch_size",
            Hist::ReplApplySeconds => "sdl_repl_apply_seconds",
        }
    }

    /// Help text.
    pub fn help(self) -> &'static str {
        match self {
            Hist::QueryEvalSeconds => "Latency of transaction guard evaluation.",
            Hist::WindowSize => "Tuples admitted per constructed window.",
            Hist::BlockedSeconds => "Time processes spent blocked before waking.",
            Hist::ShardLockWaitSeconds => "Time spent acquiring shard-lock footprints.",
            Hist::WalFsyncSeconds => "Latency of write-ahead-log fsyncs.",
            Hist::EffectsBuildSeconds => "Time spent building committed effect sets.",
            Hist::CommitApplySeconds => {
                "Time inside the commit critical section (validate + apply + WAL append)."
            }
            Hist::NetBatchSize => "Requests committed per networked-server engine batch.",
            Hist::ReplApplySeconds => "Time a follower spent applying one shipped commit record.",
        }
    }

    /// Upper bounds of the cumulative buckets (exclusive of `+Inf`).
    pub fn buckets(self) -> &'static [f64] {
        match self {
            Hist::QueryEvalSeconds
            | Hist::BlockedSeconds
            | Hist::ShardLockWaitSeconds
            | Hist::WalFsyncSeconds
            | Hist::EffectsBuildSeconds
            | Hist::CommitApplySeconds
            | Hist::ReplApplySeconds => LATENCY_BUCKETS,
            Hist::WindowSize | Hist::NetBatchSize => SIZE_BUCKETS,
        }
    }
}

/// Per-shard counters recorded by the sharded dataspace executor. Unlike
/// [`Counter`], these carry a dynamic `shard` label, so they get their own
/// channel instead of one enum discriminant per (kind, shard) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum ShardCounter {
    /// `sdl_shard_commits_total{shard="i"}` — transactions whose write
    /// footprint included shard *i* and that committed.
    Commits,
    /// `sdl_shard_conflicts_total{shard="i"}` — validation failures whose
    /// read footprint included shard *i*.
    Conflicts,
}

impl ShardCounter {
    /// Both per-shard counters, exposition order.
    pub const ALL: [ShardCounter; 2] = [ShardCounter::Commits, ShardCounter::Conflicts];

    /// Number of per-shard counter kinds.
    pub const COUNT: usize = ShardCounter::ALL.len();

    /// The Prometheus metric name (family).
    pub fn name(self) -> &'static str {
        match self {
            ShardCounter::Commits => "sdl_shard_commits_total",
            ShardCounter::Conflicts => "sdl_shard_conflicts_total",
        }
    }

    /// Help text for the metric family.
    pub fn help(self) -> &'static str {
        match self {
            ShardCounter::Commits => "Committed transactions whose footprint touched the shard.",
            ShardCounter::Conflicts => "Validation conflicts whose footprint touched the shard.",
        }
    }
}

/// Per-event-loop counters recorded by the networked server. Like
/// [`ShardCounter`] these carry a dynamic `loop` label and get their own
/// channel, clamped at [`MAX_LOOP_SERIES`] with an overflow aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum LoopCounter {
    /// `sdl_net_requests_total{loop="i"}` — wire requests decoded and
    /// executed by event loop *i* (the per-loop decomposition of the
    /// `op=`-labelled request series).
    Requests,
    /// `sdl_net_loop_wake_handoffs_total{loop="i"}` — wakes claimed by a
    /// commit on another loop and handed to loop *i* through its mailbox
    /// + wake fd.
    WakeHandoffs,
}

impl LoopCounter {
    /// Both per-loop counters, exposition order.
    pub const ALL: [LoopCounter; 2] = [LoopCounter::Requests, LoopCounter::WakeHandoffs];

    /// Number of per-loop counter kinds.
    pub const COUNT: usize = LoopCounter::ALL.len();

    /// The Prometheus metric name (family).
    pub fn name(self) -> &'static str {
        match self {
            LoopCounter::Requests => "sdl_net_requests_total",
            LoopCounter::WakeHandoffs => "sdl_net_loop_wake_handoffs_total",
        }
    }

    /// Help text for the metric family.
    pub fn help(self) -> &'static str {
        match self {
            LoopCounter::Requests => "Wire-protocol requests decoded, by event loop.",
            LoopCounter::WakeHandoffs => {
                "Cross-loop wakes delivered to the loop via its mailbox and wake fd."
            }
        }
    }
}

/// Instantaneous levels (up/down), as opposed to the monotone [`Counter`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// `sdl_blocked_queue_depth` — processes currently parked in a
    /// blocked set waiting for a watch-key wakeup.
    BlockedQueueDepth,
    /// `sdl_stalled_processes` — parked processes the stall watchdog has
    /// flagged as waiting beyond the configured threshold.
    StalledProcesses,
    /// `sdl_net_connections` — client connections currently open on the
    /// networked server.
    NetConnections,
    /// `sdl_net_loops` — event-loop worker threads the networked server
    /// is running (static for a server's lifetime).
    NetLoops,
    /// `sdl_repl_lag_commits` — commits the slowest attached follower
    /// trails the leader's shippable watermark by (on a leader), or
    /// commits this follower trails the leader by (on a follower).
    ReplLagCommits,
    /// `sdl_repl_followers` — replication followers currently attached
    /// to this leader.
    ReplFollowers,
}

impl Gauge {
    /// All gauges in exposition order.
    pub const ALL: [Gauge; 6] = [
        Gauge::BlockedQueueDepth,
        Gauge::StalledProcesses,
        Gauge::NetConnections,
        Gauge::NetLoops,
        Gauge::ReplLagCommits,
        Gauge::ReplFollowers,
    ];

    /// Number of distinct gauges.
    pub const COUNT: usize = Gauge::ALL.len();

    /// The Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::BlockedQueueDepth => "sdl_blocked_queue_depth",
            Gauge::StalledProcesses => "sdl_stalled_processes",
            Gauge::NetConnections => "sdl_net_connections",
            Gauge::NetLoops => "sdl_net_loops",
            Gauge::ReplLagCommits => "sdl_repl_lag_commits",
            Gauge::ReplFollowers => "sdl_repl_followers",
        }
    }

    /// Help text.
    pub fn help(self) -> &'static str {
        match self {
            Gauge::BlockedQueueDepth => "Processes currently parked waiting for a wakeup.",
            Gauge::StalledProcesses => {
                "Parked processes flagged by the stall watchdog (beyond --stall-ms)."
            }
            Gauge::NetConnections => "Client connections currently open on the networked server.",
            Gauge::NetLoops => "Event-loop worker threads serving the networked dataspace.",
            Gauge::ReplLagCommits => {
                "Replication lag in commits (slowest follower behind the leader watermark)."
            }
            Gauge::ReplFollowers => "Replication followers currently attached.",
        }
    }
}

/// Receiver for metric updates. Implementations must be cheap and
/// thread-safe; the schedulers call these on their hot paths.
pub trait MetricsSink: Send + Sync {
    /// Adds `n` to a counter.
    fn add(&self, counter: Counter, n: u64);

    /// Records one observation into a histogram.
    fn observe(&self, hist: Hist, value: f64);

    /// Adds `n` to a per-shard counter. Default: discard, so sinks that
    /// predate sharding (event streams, tests) keep compiling unchanged.
    fn add_shard(&self, shard: usize, counter: ShardCounter, n: u64) {
        let _ = (shard, counter, n);
    }

    /// Adds `n` to a per-event-loop counter. Default: discard, so sinks
    /// that predate the multi-loop server keep compiling unchanged.
    fn add_loop(&self, event_loop: usize, counter: LoopCounter, n: u64) {
        let _ = (event_loop, counter, n);
    }

    /// Moves a gauge by `delta` (negative to decrement). Default: discard,
    /// so sinks that predate gauges keep compiling unchanged.
    fn add_gauge(&self, gauge: Gauge, delta: i64) {
        let _ = (gauge, delta);
    }

    /// Sets a gauge to an absolute level (for sampled gauges like
    /// replication lag, where the instrument reads the level rather
    /// than tracking deltas). Default: discard.
    fn set_gauge(&self, gauge: Gauge, value: i64) {
        let _ = (gauge, value);
    }
}

/// A sink that discards everything (the explicit analogue of
/// `Metrics::disabled()`, for callers that need a concrete sink).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullMetricsSink;

impl MetricsSink for NullMetricsSink {
    fn add(&self, _counter: Counter, _n: u64) {}
    fn observe(&self, _hist: Hist, _value: f64) {}
}

/// Cheap cloneable handle threaded through the runtime.
///
/// Disabled (the default) it holds no sink and every call is a single
/// branch. Cloning shares the underlying sink.
#[derive(Clone, Default)]
pub struct Metrics {
    sink: Option<Arc<dyn MetricsSink>>,
}

/// A disabled handle with a `'static` lifetime, for default trait methods
/// that hand out `&Metrics`.
pub static DISABLED: Metrics = Metrics::disabled();

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Metrics {
    /// A handle that records nothing.
    pub const fn disabled() -> Metrics {
        Metrics { sink: None }
    }

    /// A handle recording into `sink`.
    pub fn new(sink: Arc<dyn MetricsSink>) -> Metrics {
        Metrics { sink: Some(sink) }
    }

    /// Convenience: a fresh registry plus a handle recording into it.
    pub fn registry() -> (Metrics, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        (Metrics::new(registry.clone()), registry)
    }

    /// Whether updates are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Adds `n` to `counter`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(sink) = &self.sink {
            sink.add(counter, n);
        }
    }

    /// Adds 1 to `counter`.
    #[inline]
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Records `value` into `hist`.
    #[inline]
    pub fn observe(&self, hist: Hist, value: f64) {
        if let Some(sink) = &self.sink {
            sink.observe(hist, value);
        }
    }

    /// Adds `n` to the per-shard counter for `shard`.
    #[inline]
    pub fn add_shard(&self, shard: usize, counter: ShardCounter, n: u64) {
        if let Some(sink) = &self.sink {
            sink.add_shard(shard, counter, n);
        }
    }

    /// Adds `n` to the per-event-loop counter for `event_loop`.
    #[inline]
    pub fn add_loop(&self, event_loop: usize, counter: LoopCounter, n: u64) {
        if let Some(sink) = &self.sink {
            sink.add_loop(event_loop, counter, n);
        }
    }

    /// Moves `gauge` by `delta` (negative to decrement).
    #[inline]
    pub fn add_gauge(&self, gauge: Gauge, delta: i64) {
        if let Some(sink) = &self.sink {
            sink.add_gauge(gauge, delta);
        }
    }

    /// Sets `gauge` to an absolute level.
    #[inline]
    pub fn set_gauge(&self, gauge: Gauge, value: i64) {
        if let Some(sink) = &self.sink {
            sink.set_gauge(gauge, value);
        }
    }

    /// Starts a wall-clock timer, or `None` when disabled (so the disabled
    /// path never reads the clock).
    #[inline]
    pub fn start_timer(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records the elapsed time of a timer from [`Metrics::start_timer`].
    #[inline]
    pub fn observe_timer(&self, hist: Hist, start: Option<Instant>) {
        if let Some(start) = start {
            self.observe(hist, start.elapsed().as_secs_f64());
        }
    }
}

struct HistStore {
    /// One cumulative-count slot per bucket bound, plus `+Inf` at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as `f64::to_bits` and updated by CAS.
    sum_bits: AtomicU64,
}

impl HistStore {
    fn new(hist: Hist) -> HistStore {
        HistStore {
            buckets: (0..=hist.buckets().len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, bounds: &[f64], value: f64) {
        let idx = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// Fixed shard-label capacity of the registry: matches the dataspace's
/// 64-shard maximum, so per-shard storage stays a flat atomic array.
/// Updates for shards at index ≥ `MAX_SHARD_SERIES` are folded into one
/// aggregate slot rendered as `shard="overflow"`, so counts are never
/// silently dropped when an executor outgrows the per-shard series.
pub const MAX_SHARD_SERIES: usize = 64;

/// Per-kind shard slots: one per addressable shard plus the overflow
/// aggregate at index `MAX_SHARD_SERIES`.
const SHARD_SLOTS: usize = MAX_SHARD_SERIES + 1;

/// Fixed event-loop-label capacity, clamped exactly like the shard
/// series: loops at index ≥ `MAX_LOOP_SERIES` fold into one aggregate
/// slot rendered as `loop="overflow"`.
pub const MAX_LOOP_SERIES: usize = 64;

/// Per-kind loop slots: one per addressable loop plus the overflow
/// aggregate at index `MAX_LOOP_SERIES`.
const LOOP_SLOTS: usize = MAX_LOOP_SERIES + 1;

/// Lock-free metric storage: one atomic per [`Counter`], fixed-bucket
/// atomics per [`Hist`]. Shared via `Arc` between the runtime and whoever
/// reads the snapshot at the end.
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicI64; Gauge::COUNT],
    /// Low watermark per gauge: the smallest level ever observed after
    /// an update. A correctly accounted depth gauge never dips below
    /// zero; the schedule-exploration tests assert exactly that. The
    /// watermark is exact when updates are serialised (as they are
    /// under the explorer) and approximate under true concurrency.
    gauge_mins: [AtomicI64; Gauge::COUNT],
    hists: Vec<HistStore>,
    /// `[kind][shard]`, flattened: `kind * SHARD_SLOTS + shard`, with the
    /// overflow aggregate in the last slot of each kind.
    shard_counters: Vec<AtomicU64>,
    /// `[kind][loop]`, flattened like `shard_counters`.
    loop_counters: Vec<AtomicU64>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicI64::new(0)),
            gauge_mins: std::array::from_fn(|_| AtomicI64::new(0)),
            hists: Hist::ALL.iter().map(|&h| HistStore::new(h)).collect(),
            shard_counters: (0..ShardCounter::COUNT * SHARD_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            loop_counters: (0..LoopCounter::COUNT * LOOP_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Current level of `gauge`.
    pub fn gauge(&self, gauge: Gauge) -> i64 {
        self.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// Lowest level `gauge` ever reached (0 if it never moved). Depth
    /// gauges going negative — even transiently — indicate a decrement
    /// racing ahead of its matching increment.
    pub fn gauge_min(&self, gauge: Gauge) -> i64 {
        self.gauge_mins[gauge as usize].load(Ordering::Relaxed)
    }

    /// Current value of a per-shard counter. Shards at index
    /// ≥ [`MAX_SHARD_SERIES`] share one aggregate slot, so querying any
    /// out-of-range shard returns the overflow total.
    pub fn shard_counter(&self, shard: usize, counter: ShardCounter) -> u64 {
        let slot = shard.min(MAX_SHARD_SERIES);
        self.shard_counters[counter as usize * SHARD_SLOTS + slot].load(Ordering::Relaxed)
    }

    /// The aggregate count folded in from shards at index
    /// ≥ [`MAX_SHARD_SERIES`] (the `shard="overflow"` series).
    pub fn shard_overflow_counter(&self, counter: ShardCounter) -> u64 {
        self.shard_counter(MAX_SHARD_SERIES, counter)
    }

    /// Current value of a per-event-loop counter. Loops at index
    /// ≥ [`MAX_LOOP_SERIES`] share one aggregate slot, so querying any
    /// out-of-range loop returns the overflow total.
    pub fn loop_counter(&self, event_loop: usize, counter: LoopCounter) -> u64 {
        let slot = event_loop.min(MAX_LOOP_SERIES);
        self.loop_counters[counter as usize * LOOP_SLOTS + slot].load(Ordering::Relaxed)
    }

    /// The aggregate count folded in from loops at index
    /// ≥ [`MAX_LOOP_SERIES`] (the `loop="overflow"` series).
    pub fn loop_overflow_counter(&self, counter: LoopCounter) -> u64 {
        self.loop_counter(MAX_LOOP_SERIES, counter)
    }

    /// Total observations recorded into `hist`.
    pub fn hist_count(&self, hist: Hist) -> u64 {
        self.hists[hist as usize].count.load(Ordering::Relaxed)
    }

    /// Sum of observations recorded into `hist`.
    pub fn hist_sum(&self, hist: Hist) -> f64 {
        self.hists[hist as usize].sum()
    }

    /// Renders the touched series of one per-loop counter into `out`.
    /// `headers` emits HELP/TYPE (families of their own); the request
    /// series instead joins the op-labelled family's existing block.
    fn render_loop_series(&self, out: &mut String, lc: LoopCounter, headers: bool) {
        use std::fmt::Write;
        let nonzero: Vec<usize> = (0..LOOP_SLOTS)
            .filter(|&l| self.loop_counter(l, lc) != 0)
            .collect();
        if nonzero.is_empty() {
            return;
        }
        if headers {
            let _ = writeln!(out, "# HELP {} {}", lc.name(), lc.help());
            let _ = writeln!(out, "# TYPE {} counter", lc.name());
        }
        for l in nonzero {
            if l == MAX_LOOP_SERIES {
                let _ = writeln!(
                    out,
                    "{}{{loop=\"overflow\"}} {}",
                    lc.name(),
                    self.loop_counter(l, lc)
                );
            } else {
                let _ = writeln!(
                    out,
                    "{}{{loop=\"{}\"}} {}",
                    lc.name(),
                    l,
                    self.loop_counter(l, lc)
                );
            }
        }
    }

    /// Renders the whole registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;

        let mut out = String::with_capacity(4096);
        let mut last_family = "";
        for &c in &Counter::ALL {
            if c.name() != last_family {
                last_family = c.name();
                let _ = writeln!(out, "# HELP {} {}", c.name(), c.help());
                let _ = writeln!(out, "# TYPE {} counter", c.name());
            }
            let labels = c.labels();
            if labels.is_empty() {
                let _ = writeln!(out, "{} {}", c.name(), self.counter(c));
            } else {
                let _ = writeln!(out, "{}{{{}}} {}", c.name(), labels, self.counter(c));
            }
            if c == Counter::NetReqOther {
                // The per-loop request series shares the
                // sdl_net_requests_total family with the op= series, so
                // its samples must stay inside this family block.
                self.render_loop_series(&mut out, LoopCounter::Requests, false);
            }
        }
        for &g in &Gauge::ALL {
            let _ = writeln!(out, "# HELP {} {}", g.name(), g.help());
            let _ = writeln!(out, "# TYPE {} gauge", g.name());
            let _ = writeln!(out, "{} {}", g.name(), self.gauge(g));
        }
        for &sc in &ShardCounter::ALL {
            // Only shards the run actually touched get a series; an idle
            // 64-shard tail would drown the exposition in zeros.
            let nonzero: Vec<usize> = (0..SHARD_SLOTS)
                .filter(|&s| self.shard_counter(s, sc) != 0)
                .collect();
            if nonzero.is_empty() {
                continue;
            }
            let _ = writeln!(out, "# HELP {} {}", sc.name(), sc.help());
            let _ = writeln!(out, "# TYPE {} counter", sc.name());
            for s in nonzero {
                if s == MAX_SHARD_SERIES {
                    let _ = writeln!(
                        out,
                        "{}{{shard=\"overflow\"}} {}",
                        sc.name(),
                        self.shard_counter(s, sc)
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{}{{shard=\"{}\"}} {}",
                        sc.name(),
                        s,
                        self.shard_counter(s, sc)
                    );
                }
            }
        }
        // Per-loop families that don't merge into an existing counter
        // family get their own block (requests rendered above).
        self.render_loop_series(&mut out, LoopCounter::WakeHandoffs, true);
        for &h in &Hist::ALL {
            let store = &self.hists[h as usize];
            let _ = writeln!(out, "# HELP {} {}", h.name(), h.help());
            let _ = writeln!(out, "# TYPE {} histogram", h.name());
            let mut cumulative = 0u64;
            for (i, bound) in h.buckets().iter().enumerate() {
                cumulative += store.buckets[i].load(Ordering::Relaxed);
                let _ = writeln!(
                    out,
                    "{}_bucket{{le=\"{}\"}} {}",
                    h.name(),
                    bound,
                    cumulative
                );
            }
            cumulative += store.buckets[h.buckets().len()].load(Ordering::Relaxed);
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name(), cumulative);
            let _ = writeln!(out, "{}_sum {}", h.name(), store.sum());
            let _ = writeln!(
                out,
                "{}_count {}",
                h.name(),
                store.count.load(Ordering::Relaxed)
            );
        }
        out
    }
}

impl MetricsSink for MetricsRegistry {
    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn observe(&self, hist: Hist, value: f64) {
        self.hists[hist as usize].observe(hist.buckets(), value);
    }

    fn add_shard(&self, shard: usize, counter: ShardCounter, n: u64) {
        let slot = shard.min(MAX_SHARD_SERIES);
        self.shard_counters[counter as usize * SHARD_SLOTS + slot].fetch_add(n, Ordering::Relaxed);
    }

    fn add_loop(&self, event_loop: usize, counter: LoopCounter, n: u64) {
        let slot = event_loop.min(MAX_LOOP_SERIES);
        self.loop_counters[counter as usize * LOOP_SLOTS + slot].fetch_add(n, Ordering::Relaxed);
    }

    fn add_gauge(&self, gauge: Gauge, delta: i64) {
        let new = self.gauges[gauge as usize].fetch_add(delta, Ordering::Relaxed) + delta;
        self.gauge_mins[gauge as usize].fetch_min(new, Ordering::Relaxed);
    }

    fn set_gauge(&self, gauge: Gauge, value: i64) {
        self.gauges[gauge as usize].store(value, Ordering::Relaxed);
        self.gauge_mins[gauge as usize].fetch_min(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_never_reads_the_clock() {
        let m = Metrics::disabled();
        assert!(!m.enabled());
        m.inc(Counter::TuplesAsserted);
        m.observe(Hist::WindowSize, 3.0);
        assert!(m.start_timer().is_none());
        m.observe_timer(Hist::QueryEvalSeconds, None);
    }

    #[test]
    fn counters_accumulate_per_series() {
        let (m, reg) = Metrics::registry();
        m.inc(Counter::TxnCommittedImmediate);
        m.add(Counter::TxnCommittedImmediate, 2);
        m.inc(Counter::TxnCommittedConsensus);
        assert_eq!(reg.counter(Counter::TxnCommittedImmediate), 3);
        assert_eq!(reg.counter(Counter::TxnCommittedConsensus), 1);
        assert_eq!(reg.counter(Counter::TxnCommittedDelayed), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let (m, reg) = Metrics::registry();
        m.observe(Hist::WindowSize, 0.0);
        m.observe(Hist::WindowSize, 3.0);
        m.observe(Hist::WindowSize, 1e9); // lands in +Inf
        assert_eq!(reg.hist_count(Hist::WindowSize), 3);
        assert!((reg.hist_sum(Hist::WindowSize) - 1e9 - 3.0).abs() < 1e-6);
        let text = reg.render_prometheus();
        assert!(text.contains("sdl_window_size_bucket{le=\"0\"} 1"));
        assert!(text.contains("sdl_window_size_bucket{le=\"4\"} 2"));
        assert!(text.contains("sdl_window_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sdl_window_size_count 3"));
    }

    #[test]
    fn prometheus_rendering_has_headers_and_labels() {
        let (m, reg) = Metrics::registry();
        m.inc(Counter::TxnCommittedConsensus);
        m.inc(Counter::IndexHitArg1);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sdl_txn_committed_total counter"));
        assert!(text.contains("sdl_txn_committed_total{mode=\"consensus\"} 1"));
        assert!(text.contains("sdl_index_lookups_total{index=\"arg1\"} 1"));
        // Exactly one header per family.
        assert_eq!(
            text.matches("# TYPE sdl_txn_committed_total counter")
                .count(),
            1
        );
    }

    #[test]
    fn shard_counters_render_only_touched_shards() {
        let (m, reg) = Metrics::registry();
        let text = reg.render_prometheus();
        assert!(
            !text.contains("sdl_shard_commits_total"),
            "untouched shard families are omitted entirely"
        );
        m.add_shard(0, ShardCounter::Commits, 3);
        m.add_shard(5, ShardCounter::Commits, 1);
        m.add_shard(5, ShardCounter::Conflicts, 2);
        assert_eq!(reg.shard_counter(0, ShardCounter::Commits), 3);
        assert_eq!(reg.shard_counter(5, ShardCounter::Conflicts), 2);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sdl_shard_commits_total counter"));
        assert!(text.contains("sdl_shard_commits_total{shard=\"0\"} 3"));
        assert!(text.contains("sdl_shard_commits_total{shard=\"5\"} 1"));
        assert!(text.contains("sdl_shard_conflicts_total{shard=\"5\"} 2"));
        assert!(!text.contains("shard=\"1\"}"), "idle shards get no series");
        assert!(
            !text.contains("shard=\"overflow\""),
            "no overflow series until an out-of-range shard records"
        );
    }

    #[test]
    fn out_of_range_shards_fold_into_the_overflow_series() {
        // Regression: shards at index >= MAX_SHARD_SERIES used to be
        // silently unrecorded. A 128-shard executor must still account
        // for every commit, aggregated under shard="overflow".
        let (m, reg) = Metrics::registry();
        for shard in 0..128 {
            m.add_shard(shard, ShardCounter::Commits, 1);
        }
        m.add_shard(127, ShardCounter::Conflicts, 5);
        let in_range: u64 = (0..MAX_SHARD_SERIES)
            .map(|s| reg.shard_counter(s, ShardCounter::Commits))
            .sum();
        assert_eq!(in_range, MAX_SHARD_SERIES as u64);
        assert_eq!(
            reg.shard_overflow_counter(ShardCounter::Commits),
            (128 - MAX_SHARD_SERIES) as u64,
            "shards 64..128 all land in the aggregate slot"
        );
        // Querying any out-of-range shard reads the aggregate.
        assert_eq!(
            reg.shard_counter(999, ShardCounter::Conflicts),
            5,
            "out-of-range reads return the overflow total"
        );
        let text = reg.render_prometheus();
        assert!(text.contains("sdl_shard_commits_total{shard=\"63\"} 1"));
        assert!(text.contains("sdl_shard_commits_total{shard=\"overflow\"} 64"));
        assert!(text.contains("sdl_shard_conflicts_total{shard=\"overflow\"} 5"));
        assert!(
            !text.contains("shard=\"64\""),
            "no per-shard series past the cap"
        );
    }

    #[test]
    fn loop_counters_clamp_and_share_the_request_family() {
        let (m, reg) = Metrics::registry();
        m.inc(Counter::NetReqOut);
        m.add_loop(0, LoopCounter::Requests, 5);
        m.add_loop(3, LoopCounter::Requests, 2);
        m.add_loop(1, LoopCounter::WakeHandoffs, 4);
        m.add_loop(MAX_LOOP_SERIES + 10, LoopCounter::WakeHandoffs, 1);
        assert_eq!(reg.loop_counter(0, LoopCounter::Requests), 5);
        assert_eq!(reg.loop_overflow_counter(LoopCounter::WakeHandoffs), 1);
        let text = reg.render_prometheus();
        // One family header for sdl_net_requests_total, with both op=
        // and loop= series inside it.
        assert_eq!(
            text.matches("# TYPE sdl_net_requests_total counter")
                .count(),
            1
        );
        assert!(text.contains("sdl_net_requests_total{op=\"out\"} 1"));
        assert!(text.contains("sdl_net_requests_total{loop=\"0\"} 5"));
        assert!(text.contains("sdl_net_requests_total{loop=\"3\"} 2"));
        let op_block = text.find("sdl_net_requests_total{op=\"out\"}").unwrap();
        let loop_line = text.find("sdl_net_requests_total{loop=\"0\"}").unwrap();
        let next_type = text[op_block..].find("# TYPE").unwrap() + op_block;
        assert!(loop_line < next_type, "loop series stay inside the family");
        assert!(text.contains("# TYPE sdl_net_loop_wake_handoffs_total counter"));
        assert!(text.contains("sdl_net_loop_wake_handoffs_total{loop=\"1\"} 4"));
        assert!(text.contains("sdl_net_loop_wake_handoffs_total{loop=\"overflow\"} 1"));
        // sdl_net_loops renders as a plain gauge.
        m.add_gauge(Gauge::NetLoops, 4);
        assert!(reg.render_prometheus().contains("sdl_net_loops 4"));
    }

    #[test]
    fn stalled_process_gauge_and_phase_histograms_render() {
        let (m, reg) = Metrics::registry();
        m.add_gauge(Gauge::StalledProcesses, 2);
        m.add_gauge(Gauge::StalledProcesses, -1);
        m.observe(Hist::CommitApplySeconds, 3e-6);
        m.observe(Hist::EffectsBuildSeconds, 2e-6);
        assert_eq!(reg.gauge(Gauge::StalledProcesses), 1);
        assert_eq!(reg.hist_count(Hist::CommitApplySeconds), 1);
        assert_eq!(reg.hist_count(Hist::EffectsBuildSeconds), 1);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sdl_stalled_processes gauge"));
        assert!(text.contains("sdl_stalled_processes 1"));
        assert!(text.contains("# TYPE sdl_commit_apply_seconds histogram"));
        assert!(text.contains("sdl_effects_build_seconds_count 1"));
    }

    #[test]
    fn shard_lock_wait_histogram_is_exposed() {
        let (m, reg) = Metrics::registry();
        m.observe(Hist::ShardLockWaitSeconds, 2e-6);
        assert_eq!(reg.hist_count(Hist::ShardLockWaitSeconds), 1);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sdl_shard_lock_wait_seconds histogram"));
        assert!(text.contains("sdl_shard_lock_wait_seconds_count 1"));
    }

    #[test]
    fn wake_precision_counters_share_one_family() {
        let (m, reg) = Metrics::registry();
        m.inc(Counter::WakeProgress);
        m.add(Counter::WakeSpurious, 4);
        assert_eq!(reg.counter(Counter::WakeProgress), 1);
        assert_eq!(reg.counter(Counter::WakeSpurious), 4);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE sdl_wakes_total counter").count(), 1);
        assert!(text.contains("sdl_wakes_total{result=\"progress\"} 1"));
        assert!(text.contains("sdl_wakes_total{result=\"spurious\"} 4"));
    }

    #[test]
    fn gauges_move_both_ways_and_render_as_gauge() {
        let (m, reg) = Metrics::registry();
        m.add_gauge(Gauge::BlockedQueueDepth, 3);
        m.add_gauge(Gauge::BlockedQueueDepth, -1);
        assert_eq!(reg.gauge(Gauge::BlockedQueueDepth), 2);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sdl_blocked_queue_depth gauge"));
        assert!(text.contains("sdl_blocked_queue_depth 2"));
        // Disabled handles and the null sink discard gauge updates.
        Metrics::disabled().add_gauge(Gauge::BlockedQueueDepth, 7);
        NullMetricsSink.add_gauge(Gauge::BlockedQueueDepth, 7);
        assert_eq!(reg.gauge(Gauge::BlockedQueueDepth), 2);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let (m, reg) = Metrics::registry();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        m.inc(Counter::MatchAttempts);
                        m.observe(Hist::QueryEvalSeconds, 1e-5);
                    }
                });
            }
        });
        assert_eq!(reg.counter(Counter::MatchAttempts), 40_000);
        assert_eq!(reg.hist_count(Hist::QueryEvalSeconds), 40_000);
    }
}
