//! End-to-end coverage of the event stream: every [`Event`] variant is
//! produced by a real program, the JSONL export carries the same events,
//! and the rounds scheduler's event order is deterministic per seed.

use sdl_core::events::event_json;
use sdl_core::{CompiledProgram, Event, EventLog, JsonlSink, Runtime};

/// A program whose single serial run produces every event variant:
/// assertion, retraction, export drop, commit, failure, block,
/// creation, termination (both normal and aborted), and consensus.
const KITCHEN_SINK: &str = r#"
    process P() {
        export { <out, *>; }
        -> <out, 1>, <secret, 2>;
        <nope> -> skip;
        exists v : <out, v>! -> ;
    }
    process A() { -> abort; }
    process Q() {
        import { <never, *>; }
        <never, 1> => skip;
    }
    process C(me) {
        import { <ready, *>; }
        <ready, 1>, <ready, 2> @> skip;
    }
    init {
        <ready, 1>; <ready, 2>;
        spawn P(); spawn A(); spawn Q(); spawn C(1); spawn C(2);
    }
"#;

fn run_traced(src: &str, seed: u64) -> Runtime {
    let program = CompiledProgram::from_source(src).unwrap();
    let mut rt = Runtime::builder(program)
        .seed(seed)
        .trace(true)
        .build()
        .unwrap();
    rt.run().unwrap();
    rt
}

#[test]
fn every_event_variant_is_produced() {
    let rt = run_traced(KITCHEN_SINK, 7);
    let log = rt.event_log().unwrap();
    let kinds: std::collections::BTreeSet<&str> = log.iter().map(|(_, e)| e.kind_str()).collect();
    for expected in [
        "tuple_asserted",
        "tuple_retracted",
        "export_dropped",
        "txn_committed",
        "txn_failed",
        "process_blocked",
        "process_created",
        "process_terminated",
        "consensus_reached",
    ] {
        assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
    }
    let aborted = log
        .iter()
        .any(|(_, e)| matches!(e, Event::ProcessTerminated { aborted: true, .. }));
    assert!(aborted, "A aborts, so an aborted termination must appear");
}

#[test]
fn jsonl_sink_carries_the_same_events_as_the_log() {
    let program = CompiledProgram::from_source(KITCHEN_SINK).unwrap();
    let buf: Vec<u8> = Vec::new();
    let sink = JsonlSink::new(buf);
    let stats = sink.stats();
    let mut rt = Runtime::builder(program)
        .seed(7)
        .trace(true)
        .event_sink(Box::new(sink))
        .build()
        .unwrap();
    rt.run().unwrap();
    let log_lines: Vec<String> = rt
        .event_log()
        .unwrap()
        .iter()
        .map(|(step, e)| event_json(*step, e))
        .collect();
    assert_eq!(stats.written(), log_lines.len() as u64);
    assert_eq!(stats.dropped(), 0);
    // Each exported line is one well-formed JSON object with the shared
    // envelope fields.
    for line in &log_lines {
        assert!(line.starts_with("{\"step\":"), "{line}");
        assert!(line.contains("\"type\":\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
}

#[test]
fn bounded_log_reports_drops_and_clear_resets() {
    let rt = {
        let program = CompiledProgram::from_source(KITCHEN_SINK).unwrap();
        let mut rt = Runtime::builder(program)
            .seed(7)
            .trace_capacity(4)
            .build()
            .unwrap();
        rt.run().unwrap();
        rt
    };
    let full = run_traced(KITCHEN_SINK, 7);
    let total = full.event_log().unwrap().len() as u64;
    let log = rt.event_log().unwrap();
    assert_eq!(log.len(), 4);
    assert_eq!(log.dropped(), total - 4);

    let mut log = EventLog::with_capacity(1);
    log.push(
        0,
        Event::TxnFailed {
            by: sdl_tuple::ProcId(1),
        },
    );
    log.push(
        1,
        Event::TxnFailed {
            by: sdl_tuple::ProcId(1),
        },
    );
    assert_eq!((log.len(), log.dropped()), (1, 1));
    log.clear();
    assert_eq!((log.len(), log.dropped()), (0, 0));
}

#[test]
fn rounds_event_order_is_deterministic_per_seed() {
    let render = |seed: u64| -> Vec<String> {
        let program = CompiledProgram::from_source(KITCHEN_SINK).unwrap();
        let mut rt = Runtime::builder(program)
            .seed(seed)
            .trace(true)
            .build()
            .unwrap();
        rt.run_rounds().unwrap();
        rt.event_log()
            .unwrap()
            .iter()
            .map(|(step, e)| event_json(*step, e))
            .collect()
    };
    let a = render(3);
    let b = render(3);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay the identical event stream");
}
