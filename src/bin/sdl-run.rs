//! `sdl-run` — run an SDL program from a `.sdl` source file.
//!
//! ```text
//! sdl-run <file.sdl> [--seed N] [--rounds] [--threaded] [--trace] [--stats]
//!         [--metrics] [--events-out FILE] [--trace-cap N] [--threads N]
//!         [--shards N] [--max-attempts N] [--grid WxH] [--no-plan]
//!         [--coarse-wakes]
//! ```
//!
//! * `--rounds`          use the maximal-parallel-rounds scheduler
//! * `--threaded`        use the multithreaded optimistic executor
//! * `--threads N`       worker threads for `--threaded` (default: CPUs)
//! * `--shards N`        dataspace shards for `--threaded` (default:
//!   CPUs; `1` reproduces the single-lock executor bit-for-bit)
//! * `--no-plan`         disable selectivity-driven query planning
//!   (source-order ablation baseline)
//! * `--coarse-wakes`    park blocked transactions on functor/arity
//!   watch keys only, without value-level keys (ablation baseline)
//! * `--trace`           print the event timeline after the run
//! * `--trace-cap N`     keep at most N events in the trace log
//! * `--stats`           print per-process statistics (streams; does not
//!   retain the event log)
//! * `--metrics`         print a Prometheus text-format metrics snapshot
//! * `--events-out FILE` stream events to FILE as JSON Lines
//! * `--grid WxH`        register the `neighbor` predicate for a W×H grid
//! * `--seed N`          scheduler seed (default 0)

use std::io::BufWriter;
use std::process::ExitCode;

use sdl::core::{Builtins, CompiledProgram, JsonlSink, PlanMode, RunLimits, Runtime};
use sdl::metrics::Metrics;
use sdl::trace::{render_dataspace, StatsSink};

struct Args {
    file: String,
    seed: u64,
    rounds: bool,
    threaded: bool,
    threads: Option<usize>,
    shards: Option<usize>,
    trace: bool,
    trace_cap: Option<usize>,
    stats: bool,
    metrics: bool,
    events_out: Option<String>,
    max_attempts: u64,
    grid: Option<(i64, i64)>,
    no_plan: bool,
    coarse_wakes: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sdl-run <file.sdl> [--seed N] [--rounds] [--threaded] [--trace] \
         [--stats] [--metrics] [--events-out FILE] [--trace-cap N] \
         [--threads N] [--shards N] [--max-attempts N] [--grid WxH] [--no-plan] \
         [--coarse-wakes]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        seed: 0,
        rounds: false,
        threaded: false,
        threads: None,
        shards: None,
        trace: false,
        trace_cap: None,
        stats: false,
        metrics: false,
        events_out: None,
        max_attempts: RunLimits::default().max_attempts,
        grid: None,
        no_plan: false,
        coarse_wakes: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--rounds" => args.rounds = true,
            "--threaded" => args.threaded = true,
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--shards" => {
                args.shards = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace" => args.trace = true,
            "--trace-cap" => {
                args.trace_cap = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--stats" => args.stats = true,
            "--metrics" => args.metrics = true,
            "--events-out" => args.events_out = Some(it.next().unwrap_or_else(|| usage())),
            "--max-attempts" => {
                args.max_attempts = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--grid" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (w, h) = spec.split_once('x').unwrap_or_else(|| usage());
                args.grid = Some((
                    w.parse().unwrap_or_else(|_| usage()),
                    h.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--no-plan" => args.no_plan = true,
            "--coarse-wakes" => args.coarse_wakes = true,
            "--help" | "-h" => usage(),
            f if args.file.is_empty() && !f.starts_with('-') => args.file = f.to_owned(),
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    args
}

fn run_threaded(
    args: &Args,
    program: CompiledProgram,
    builtins: Builtins,
    metrics: Metrics,
    registry: Option<std::sync::Arc<sdl::metrics::MetricsRegistry>>,
) -> ExitCode {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut b = sdl::core::parallel::ParallelRuntime::builder(program)
        .seed(args.seed)
        .builtins(builtins)
        .metrics(metrics)
        .max_attempts(args.max_attempts)
        .threads(args.threads.unwrap_or(cpus))
        .shards(args.shards.unwrap_or(cpus));
    if args.no_plan {
        b = b.plan_mode(PlanMode::SourceOrder);
    }
    if args.coarse_wakes {
        b = b.exact_wakes(false);
    }
    let rt = match b.build() {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("sdl-run: init failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (report, ds) = match rt.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sdl-run: runtime error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("outcome: {}", report.outcome);
    println!(
        "commits: {}  attempts: {}  conflicts: {}  tuples: {}",
        report.commits, report.attempts, report.conflicts, report.final_tuples
    );
    println!("{}", render_dataspace(&ds, 20));
    if let Some(registry) = &registry {
        print!("{}", registry.render_prometheus());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sdl-run: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match CompiledProgram::from_source(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sdl-run: {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let mut builtins = Builtins::standard();
    if let Some((w, h)) = args.grid {
        builtins.register_grid_neighbor(w, h);
    }

    let (metrics, registry) = if args.metrics {
        let (m, r) = Metrics::registry();
        (m, Some(r))
    } else {
        (Metrics::disabled(), None)
    };

    if args.threaded {
        if args.rounds
            || args.trace
            || args.stats
            || args.trace_cap.is_some()
            || args.events_out.is_some()
        {
            eprintln!(
                "sdl-run: --threaded does not support --rounds, --trace, \
                 --stats, --trace-cap, or --events-out"
            );
            return ExitCode::FAILURE;
        }
        return run_threaded(&args, program, builtins, metrics, registry);
    }

    let mut builder = Runtime::builder(program)
        .seed(args.seed)
        .builtins(builtins)
        .metrics(metrics.clone())
        .limits(RunLimits {
            max_attempts: args.max_attempts,
        });
    if args.no_plan {
        builder = builder.plan_mode(PlanMode::SourceOrder);
    }
    if args.coarse_wakes {
        builder = builder.exact_wakes(false);
    }
    if let Some(cap) = args.trace_cap {
        builder = builder.trace_capacity(cap);
    } else if args.trace {
        builder = builder.trace(true);
    }
    let stats_sink = args.stats.then(StatsSink::new);
    if let Some(sink) = &stats_sink {
        builder = builder.event_sink(Box::new(sink.clone()));
    }
    let stream_stats = match &args.events_out {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("sdl-run: cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let sink = JsonlSink::new(BufWriter::new(file)).with_metrics(metrics.clone());
            let stats = sink.stats();
            builder = builder.event_sink(Box::new(sink));
            Some(stats)
        }
        None => None,
    };

    let mut rt = match builder.build() {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("sdl-run: init failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.rounds {
        rt.run_rounds()
    } else {
        rt.run()
    };
    // Drop the sinks first: the JSONL writer flushes on drop, so the file
    // is complete before we report on it.
    drop(rt.take_event_sinks());
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sdl-run: runtime error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    if matches!(report.outcome, sdl::core::Outcome::Quiescent { .. }) {
        print!("{}", rt.blocked_report());
    }
    println!("{}", render_dataspace(rt.dataspace(), 20));
    if let Some(sink) = &stats_sink {
        println!("{}", sink.snapshot());
    }
    if args.trace {
        println!("timeline:");
        print!(
            "{}",
            sdl::trace::timeline::render(rt.event_log().expect("tracing on"))
        );
    }
    if let (Some(path), Some(stats)) = (&args.events_out, &stream_stats) {
        eprintln!(
            "sdl-run: {}: {} event(s) written, {} dropped",
            path,
            stats.written(),
            stats.dropped()
        );
    }
    if let Some(registry) = &registry {
        print!("{}", registry.render_prometheus());
    }
    ExitCode::SUCCESS
}
