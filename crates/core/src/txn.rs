//! Transaction evaluation: from a compiled transaction and a query source
//! to a validated, appliable [`Pending`] commit.
//!
//! Evaluation is split from application so the same machinery drives
//! three executors:
//!
//! * the serial scheduler evaluates and applies against the same store;
//! * the parallel-rounds scheduler evaluates against a round-start
//!   snapshot and validates/applies against the live store;
//! * the threaded executor evaluates under a read lock and
//!   validates/applies under the write lock, retrying on conflict.

use std::collections::{HashMap, HashSet};

use sdl_dataspace::{
    ForallEvidence, IndexMode, PlanMode, QueryAtom, SolveLimits, Solver, TupleSource,
};
use sdl_lang::ast::{Action, Quant};
use sdl_lang::expr::{eval, eval_test};
use sdl_tuple::{Bindings, Pattern, Tuple, TupleId, Value};

use crate::builtins::Builtins;
use crate::error::RuntimeError;
use crate::program::{CachedPlan, CompiledTxn, ScheduledTest, TestCheck};
use crate::view::{resolve_fields, EnvCtx};

/// How a transaction's query is planned.
///
/// `mode` selects planned vs source-order execution (the ablation
/// baseline); `index_mode` keys the per-statement plan cache so plans
/// estimated under one index configuration are not reused under another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanConfig {
    /// Planned (default) or source-order execution.
    pub mode: PlanMode,
    /// The index mode of the store being queried (plan-cache key).
    pub index_mode: IndexMode,
    /// Subscribe blocked transactions to exact value-level watch keys
    /// (default). Off, the coarse functor/arity keys are used everywhere
    /// — the pre-exact behaviour, kept as the wake-storm ablation
    /// baseline (`sdl-run --coarse-wakes`).
    pub exact_wakes: bool,
}

impl Default for PlanConfig {
    fn default() -> PlanConfig {
        PlanConfig {
            mode: PlanMode::default(),
            index_mode: IndexMode::default(),
            exact_wakes: true,
        }
    }
}

impl PlanConfig {
    /// Source-order execution: the pre-planner behaviour, kept as the
    /// ablation baseline (`sdl-run --no-plan`).
    pub fn source_order() -> PlanConfig {
        PlanConfig {
            mode: PlanMode::SourceOrder,
            ..PlanConfig::default()
        }
    }

    /// The same configuration with coarse (functor/arity) wake keys.
    pub fn coarse_wakes(self) -> PlanConfig {
        PlanConfig {
            exact_wakes: false,
            ..self
        }
    }
}

/// The effects of a successfully evaluated transaction, not yet applied.
#[derive(Clone, Debug, Default)]
pub struct Pending {
    /// Instances to retract (pairwise distinct).
    pub retracts: Vec<TupleId>,
    /// Tuples to assert (before export filtering).
    pub asserts: Vec<Tuple>,
    /// Instances the query read (for validation).
    pub reads: Vec<TupleId>,
    /// Resolved negated patterns the query verified empty (for
    /// validation).
    pub neg_checks: Vec<Pattern>,
    /// For `forall` transactions: per-atom match evidence. The solution
    /// set was computed from exactly these instances; validation rejects
    /// if any atom's match set has drifted (a concurrent assert or
    /// retract could enlarge — not just shrink — the solution set).
    pub forall_checks: Vec<ForallEvidence>,
    /// `let` bindings to install in the process environment, in order.
    pub lets: Vec<(String, Value)>,
    /// Processes to create.
    pub spawns: Vec<(String, Vec<Value>)>,
    /// `exit` was executed.
    pub exit: bool,
    /// `abort` was executed.
    pub abort: bool,
}

impl Pending {
    /// True against `ds` iff every read/retracted instance is still live,
    /// every verified negation still has no match, and every `forall`
    /// atom still matches exactly the instances the evaluation saw — i.e.
    /// the evaluation would reach the same conclusion on `ds`.
    pub fn validate<S: TupleSource + ?Sized>(&self, ds: &S) -> bool {
        self.reads.iter().all(|id| ds.tuple(*id).is_some())
            && self.retracts.iter().all(|id| ds.tuple(*id).is_some())
            && self.neg_checks.iter().all(|p| !ds.contains_match(p))
            && self
                .forall_checks
                .iter()
                .all(|e| ds.matching_ids(&e.pattern) == e.matched)
    }
}

/// What a query evaluation committed to: the solutions plus (for
/// `forall`) the atom-level match evidence [`Pending::validate`] needs to
/// detect solution-set drift.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// The committed-to solutions (`exists`: exactly one).
    pub solutions: Vec<sdl_dataspace::Solution>,
    /// Per-atom match evidence (`forall` only; empty for `exists`).
    pub forall_checks: Vec<ForallEvidence>,
}

/// Evaluates `txn` over `source`.
///
/// Returns `Ok(None)` when the query does not (currently) hold — for an
/// immediate transaction that is failure, for a delayed one it means
/// "keep blocking".
///
/// # Errors
///
/// Returns [`RuntimeError`] when an expression outside a test position
/// (pattern field, action argument) cannot evaluate — a program bug, not
/// a query failure.
pub fn evaluate(
    txn: &CompiledTxn,
    source: &dyn TupleSource,
    env: &HashMap<String, Value>,
    builtins: &Builtins,
    limits: SolveLimits,
    plan: PlanConfig,
) -> Result<Option<Pending>, RuntimeError> {
    evaluate_probed(txn, source, env, builtins, limits, plan, None)
}

/// [`evaluate`] with an optional [`EvalProbe`] for tracing the phases
/// nested inside evaluation (currently the plan-cache lookup).
///
/// # Errors
///
/// As [`evaluate`].
pub fn evaluate_probed(
    txn: &CompiledTxn,
    source: &dyn TupleSource,
    env: &HashMap<String, Value>,
    builtins: &Builtins,
    limits: SolveLimits,
    plan: PlanConfig,
    probe: Option<&mut EvalProbe>,
) -> Result<Option<Pending>, RuntimeError> {
    match evaluate_query_probed(txn, source, env, builtins, limits, plan, probe)? {
        Some(query) => build_effects(txn, &query, env, builtins).map(Some),
        None => Ok(None),
    }
}

/// Sub-phase timings observed inside one [`evaluate_query`] call, for
/// tracing. All offsets are microseconds relative to the probe's
/// creation, which callers should anchor at the start of their own eval
/// span. Disabled runs pass no probe, so the hot path never reads the
/// clock for it.
#[derive(Debug)]
pub struct EvalProbe {
    anchor: std::time::Instant,
    /// `(offset_us, dur_us)` of the plan-cache lookup / planning step,
    /// when plan-ordered execution ran one.
    pub plan_us: Option<(u64, u64)>,
}

impl EvalProbe {
    /// A probe anchored at `now`.
    pub fn new() -> EvalProbe {
        EvalProbe {
            anchor: std::time::Instant::now(),
            plan_us: None,
        }
    }
}

impl Default for EvalProbe {
    fn default() -> Self {
        EvalProbe::new()
    }
}

/// The query half of [`evaluate`]: runs the binding query, negations, and
/// tests over `source` and returns the committed-to solutions, or `None`
/// if the query does not hold. Needs the dataspace; the effect half
/// ([`build_effects`]) does not — the threaded executor exploits the
/// split to keep expensive action computation outside the store lock.
///
/// # Errors
///
/// As [`evaluate`].
pub fn evaluate_query(
    txn: &CompiledTxn,
    source: &dyn TupleSource,
    env: &HashMap<String, Value>,
    builtins: &Builtins,
    limits: SolveLimits,
    plan: PlanConfig,
) -> Result<Option<QueryOutcome>, RuntimeError> {
    evaluate_query_probed(txn, source, env, builtins, limits, plan, None)
}

/// [`evaluate_query`] with an optional [`EvalProbe`] recording nested
/// phase timings (the plan-cache lookup).
///
/// # Errors
///
/// As [`evaluate`].
pub fn evaluate_query_probed(
    txn: &CompiledTxn,
    source: &dyn TupleSource,
    env: &HashMap<String, Value>,
    builtins: &Builtins,
    limits: SolveLimits,
    plan: PlanConfig,
    probe: Option<&mut EvalProbe>,
) -> Result<Option<QueryOutcome>, RuntimeError> {
    let plain_ctx = EnvCtx {
        env,
        vars: None,
        builtins,
    };

    // Depth-0 tests involve no quantified variables; under both
    // quantifiers they gate the whole transaction.
    for t in txn
        .binding_tests
        .iter()
        .chain(txn.property_tests.iter())
        .filter(|t| t.depth == 0)
    {
        match &t.check {
            TestCheck::Expr(e) => {
                if !eval_test(e, &plain_ctx) {
                    return Ok(None);
                }
            }
            TestCheck::HiddenEq { .. } => {
                unreachable!("hidden fields bind at depth >= 1")
            }
        }
    }

    // Resolve environment expressions in pattern fields.
    let mut atoms = Vec::with_capacity(txn.atoms.len());
    for a in &txn.atoms {
        let pattern = resolve_fields(&a.fields, &plain_ctx, "pattern field")?;
        atoms.push(QueryAtom {
            pattern,
            mode: a.mode,
        });
    }

    // Plan the join (or take the cached plan). Plan-ordered execution
    // re-schedules the statement's tests against the plan's bind depths;
    // source order uses the compile-time schedule unchanged. Depth-0
    // tests are plan-invariant (no quantified variables), so the
    // prefilter above needed no plan.
    let cached: Option<std::sync::Arc<CachedPlan>> = match plan.mode {
        PlanMode::Planned => match probe {
            Some(pr) => {
                let t0 = pr.anchor.elapsed().as_micros() as u64;
                let cached = txn.plan_for(&atoms, source, plan.index_mode);
                let t1 = pr.anchor.elapsed().as_micros() as u64;
                pr.plan_us = Some((t0, t1.saturating_sub(t0)));
                Some(cached)
            }
            None => Some(txn.plan_for(&atoms, source, plan.index_mode)),
        },
        PlanMode::SourceOrder => None,
    };
    let (binding_tests, property_tests): (&[ScheduledTest], &[ScheduledTest]) = match &cached {
        Some(c) => (&c.plan.binding_tests, &c.plan.property_tests),
        None => (&txn.binding_tests, &txn.property_tests),
    };

    let solver = Solver::with_plan(
        source,
        &atoms,
        txn.n_vars,
        cached.as_deref().map(|c| &c.plan.query),
    );
    let check_tests = |tests: &[ScheduledTest], depth: usize, b: &Bindings| -> bool {
        tests.iter().filter(|t| t.depth == depth).all(|t| {
            let ctx = EnvCtx {
                env,
                vars: Some((&txn.var_names, b)),
                builtins,
            };
            match &t.check {
                TestCheck::Expr(e) => eval_test(e, &ctx),
                TestCheck::HiddenEq { var, expr } => match (b.get(*var), eval(expr, &ctx)) {
                    (Some(bound), Ok(v)) => *bound == v,
                    _ => false,
                },
            }
        })
    };

    let outcome = match txn.quant {
        Quant::Exists => {
            let mut staged = |depth: usize, b: &Bindings| {
                check_tests(binding_tests, depth, b) && check_tests(property_tests, depth, b)
            };
            match solver.first_staged(None, &mut staged) {
                Some(s) => QueryOutcome {
                    solutions: vec![s],
                    forall_checks: Vec::new(),
                },
                None => return Ok(None),
            }
        }
        Quant::Forall => {
            // The committed effects depend on the *complete* solution
            // set, so record, per atom, exactly which instances matched:
            // validation re-derives the sets and rejects on any drift.
            // Captured for negated atoms too — retracting a tuple that
            // matched a negation can enlarge the solution set. (Recorded
            // even when the set is empty: a vacuous forall still commits
            // its once-only actions.)
            let forall_checks = atoms
                .iter()
                .map(|a| ForallEvidence {
                    pattern: a.pattern.clone(),
                    matched: source.matching_ids(&a.pattern),
                })
                .collect();
            // Binding constraints prune; property tests are the checked
            // property — every binding solution must satisfy them.
            let mut staged = |depth: usize, b: &Bindings| check_tests(binding_tests, depth, b);
            let sols = solver.all_staged(None, &mut staged, limits);
            for sol in &sols {
                let b = sol.to_bindings();
                for depth in 1..=solver.positive_count() {
                    if !check_tests(property_tests, depth, &b) {
                        return Ok(None);
                    }
                }
            }
            QueryOutcome {
                solutions: sols,
                forall_checks,
            }
        }
    };

    Ok(Some(outcome))
}

/// The effect half of [`evaluate`]: turns the solutions into a
/// [`Pending`] commit by evaluating the action list. Pure with respect to
/// the dataspace.
///
/// # Errors
///
/// As [`evaluate`].
pub fn build_effects(
    txn: &CompiledTxn,
    query: &QueryOutcome,
    env: &HashMap<String, Value>,
    builtins: &Builtins,
) -> Result<Pending, RuntimeError> {
    // Assemble effects.
    let solutions = &query.solutions;
    let mut pending = Pending {
        forall_checks: query.forall_checks.clone(),
        ..Pending::default()
    };
    let mut retracted: HashSet<TupleId> = HashSet::new();
    for sol in solutions {
        for id in &sol.retracts {
            if retracted.insert(*id) {
                pending.retracts.push(*id);
            }
        }
        pending.reads.extend_from_slice(&sol.reads);
        pending.neg_checks.extend_from_slice(&sol.neg_checks);
    }

    let empty = Bindings::new(0);
    let no_vars: Vec<String> = Vec::new();
    // `let` actions are visible to the actions that follow them in the
    // same list (the paper's `let N = α, <found, N>` idiom), so action
    // evaluation runs over an overlay of the process environment.
    let mut action_env = env.clone();
    for ca in &txn.actions {
        // `forall`: per-solution actions run once per solution; others
        // once. `exists` has exactly one solution either way.
        let runs: Vec<(&[String], Bindings)> = if ca.per_solution {
            solutions
                .iter()
                .map(|s| (txn.var_names.as_slice(), s.to_bindings()))
                .collect()
        } else {
            vec![(no_vars.as_slice(), empty.clone())]
        };
        for (names, b) in &runs {
            let before = pending.lets.len();
            let ctx = EnvCtx {
                env: &action_env,
                vars: Some((names, b)),
                builtins,
            };
            apply_action(&ca.action, &ctx, &mut pending)?;
            for (name, v) in pending.lets[before..].iter().cloned() {
                action_env.insert(name, v);
            }
        }
    }
    Ok(pending)
}

fn apply_action(
    action: &Action,
    ctx: &EnvCtx<'_>,
    pending: &mut Pending,
) -> Result<(), RuntimeError> {
    let ev = |e, what: &str| {
        eval(e, ctx).map_err(|source| RuntimeError::Eval {
            source,
            context: what.to_owned(),
        })
    };
    match action {
        Action::Assert(fields) => {
            let mut vals = Vec::with_capacity(fields.len());
            for f in fields {
                vals.push(ev(f, "asserted tuple field")?);
            }
            pending.asserts.push(Tuple::new(vals));
        }
        Action::Let(name, e) => {
            let v = ev(e, "let binding")?;
            pending.lets.push((name.clone(), v));
        }
        Action::Spawn(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(ev(a, "spawn argument")?);
            }
            pending.spawns.push((name.clone(), vals));
        }
        Action::Skip => {}
        Action::Exit => pending.exit = true,
        Action::Abort => pending.abort = true,
    }
    Ok(())
}

/// The watch keys a blocked instance of `txn` listens on: the keys of all
/// its patterns (positive and negated), resolved against the process
/// environment.
///
/// With `exact` on, a positive atom whose resolved pattern has an atom
/// head and a constant argument subscribes to its value-level key
/// ([`sdl_dataspace::WatchKey::Value`]) instead of the functor channel,
/// so a transaction blocked on `<count, 7, α>` wakes only when a `count`
/// tuple carrying `7` changes. Negated atoms and patterns without a
/// constant argument keep the conservative functor/arity keys — for
/// negations the enabling change is a retraction anywhere in the
/// pattern's match set, and the coarse channel is the simplest complete
/// subscription.
pub fn watch_set(
    txn: &CompiledTxn,
    env: &HashMap<String, Value>,
    builtins: &Builtins,
    exact: bool,
) -> sdl_dataspace::WatchSet {
    watch_set_on(txn, env, builtins, exact, None)
}

/// [`watch_set`] with an optional store probe that sharpens the
/// subscription to the *most selective* atom instead of every atom.
///
/// When `source` is given and some resolvable positive atom currently
/// has zero candidates ([`TupleSource::estimate_candidates`] is an
/// upper bound on the candidate superset, so 0 is a sound emptiness
/// proof), the transaction cannot become enabled until a commit asserts
/// a tuple matching that atom — and any such assert publishes that
/// atom's watch key. Subscribing to that single atom is therefore
/// complete, as long as the caller recomputes the subscription on every
/// re-park (a spurious wake must refresh the probe: the previously
/// empty atom may now be populated while a different one is empty).
///
/// Among several provably-empty atoms the one with an exact value key
/// ([`sdl_dataspace::WatchKey::value_of_pattern`]) is preferred — value
/// keys wake on matching *values*, not just the functor channel — with
/// source order breaking ties. With no emptiness proof (or `source`
/// `None`) the subscription falls back to the full per-atom set.
pub fn watch_set_on(
    txn: &CompiledTxn,
    env: &HashMap<String, Value>,
    builtins: &Builtins,
    exact: bool,
    source: Option<&dyn TupleSource>,
) -> sdl_dataspace::WatchSet {
    let ctx = EnvCtx {
        env,
        vars: None,
        builtins,
    };
    if exact {
        if let Some(src) = source {
            let mut best: Option<(bool, Pattern)> = None;
            for a in &txn.atoms {
                if a.mode == sdl_dataspace::AtomMode::Neg {
                    continue;
                }
                let Ok(p) = resolve_fields(&a.fields, &ctx, "watch pattern") else {
                    continue;
                };
                if src.estimate_candidates(&p) != 0 {
                    continue;
                }
                let has_value_key = sdl_dataspace::WatchKey::value_of_pattern(&p).is_some();
                if has_value_key {
                    best = Some((true, p));
                    break; // Best possible: first empty atom with a value key.
                }
                if best.is_none() {
                    best = Some((false, p));
                }
            }
            if let Some((_, p)) = best {
                let mut w = sdl_dataspace::WatchSet::new();
                w.add_pattern_exact(&p);
                return w;
            }
        }
    }
    let mut w = sdl_dataspace::WatchSet::new();
    for a in &txn.atoms {
        match resolve_fields(&a.fields, &ctx, "watch pattern") {
            Ok(p) => {
                if exact && a.mode != sdl_dataspace::AtomMode::Neg {
                    w.add_pattern_exact(&p);
                } else {
                    w.add_pattern(&p);
                }
            }
            // Unresolvable field: listen on the arity channel.
            Err(_) => w.add_key(sdl_dataspace::WatchKey::Arity(a.fields.len())),
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::compile_txn;
    use sdl_dataspace::Dataspace;
    use sdl_lang::parse_transaction;
    use sdl_tuple::{pattern, tuple, ProcId};

    fn compile(src: &str) -> CompiledTxn {
        compile_txn(&parse_transaction(src).unwrap(), &HashMap::new()).unwrap()
    }

    fn env(pairs: &[(&str, i64)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), Value::Int(*v)))
            .collect()
    }

    fn run(src: &str, ds: &Dataspace, env_pairs: &[(&str, i64)]) -> Option<Pending> {
        let txn = compile(src);
        evaluate(
            &txn,
            ds,
            &env(env_pairs),
            &Builtins::standard(),
            SolveLimits::default(),
            PlanConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn paper_year_example() {
        // ∃α: <year, α>↑ : α > 87 → let N = α, <found, α>
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("year"), 90]);
        let p = run(
            "exists a : <year, a>! : a > 87 -> let N = a, <found, a>",
            &ds,
            &[],
        )
        .expect("year 90 matches");
        assert_eq!(p.retracts.len(), 1);
        assert_eq!(p.asserts, vec![tuple![Value::atom("found"), 90]]);
        assert_eq!(p.lets, vec![("N".to_owned(), Value::Int(90))]);
    }

    #[test]
    fn failure_returns_none() {
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("year"), 80]);
        assert!(run("exists a : <year, a>! : a > 87 -> skip", &ds, &[]).is_none());
    }

    #[test]
    fn env_expressions_in_patterns() {
        // Sum2 shape: <k - 2^(j-1), a, j>!, <k, b, j>! => <k, a+b, j+1>
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![1, 10, 1]);
        ds.assert_tuple(ProcId::ENV, tuple![2, 20, 1]);
        let p = run(
            "exists a, b : <k - 2^(j-1), a, j>!, <k, b, j>! => <k, a + b, j + 1>",
            &ds,
            &[("k", 2), ("j", 1)],
        )
        .expect("both operands present");
        assert_eq!(p.retracts.len(), 2);
        assert_eq!(p.asserts, vec![tuple![2, 30, 2]]);
    }

    #[test]
    fn forall_requires_every_solution_to_pass() {
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 5]);
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 10]);
        assert!(run("forall a : <v, a> : a > 3 -> skip", &ds, &[]).is_some());
        assert!(run("forall a : <v, a> : a > 7 -> skip", &ds, &[]).is_none());
    }

    #[test]
    fn forall_vacuous_truth() {
        let ds = Dataspace::new();
        let p = run("forall a : <v, a> : a > 7 -> <ok>", &ds, &[]).expect("vacuously true");
        assert!(p.retracts.is_empty());
        // <ok> mentions no variable → asserted once even with zero
        // solutions.
        assert_eq!(p.asserts.len(), 1);
    }

    #[test]
    fn forall_retracts_all_and_asserts_per_solution() {
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 1]);
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 2]);
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 3]);
        let p = run("forall a : <v, a>! -> <w, a>, <done>", &ds, &[]).unwrap();
        assert_eq!(p.retracts.len(), 3);
        assert_eq!(p.asserts.len(), 4, "3 per-solution + 1 once");
        assert_eq!(
            p.asserts
                .iter()
                .filter(|t| t.functor() == Some(sdl_tuple::Atom::new("w")))
                .count(),
            3
        );
    }

    #[test]
    fn negation_in_query() {
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("index"), 1]);
        assert!(run("not <index, *> -> <empty>", &ds, &[]).is_none());
        let mut empty_ds = Dataspace::new();
        empty_ds.assert_tuple(ProcId::ENV, tuple![Value::atom("other")]);
        let p = run("not <index, *> -> <empty>", &empty_ds, &[]).unwrap();
        assert_eq!(p.neg_checks.len(), 1);
    }

    #[test]
    fn hidden_eq_field() {
        // <x, a>, <a + 1, b>: the second atom's head is computed from a.
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("x"), 4]);
        ds.assert_tuple(ProcId::ENV, tuple![5, 50]);
        ds.assert_tuple(ProcId::ENV, tuple![6, 60]);
        let p = run("exists a, b : <x, a>, <a + 1, b> -> <got, b>", &ds, &[]).unwrap();
        assert_eq!(p.asserts, vec![tuple![Value::atom("got"), 50]]);
    }

    #[test]
    fn predicate_atom_prunes() {
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("n"), 2]);
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("n"), 3]);
        let p = run("exists a : even(a), <n, a>! -> <picked, a>", &ds, &[]).unwrap();
        assert_eq!(p.asserts, vec![tuple![Value::atom("picked"), 2]]);
    }

    #[test]
    fn depth_zero_test_gates_everything() {
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("x")]);
        assert!(run("exists a : <x> : k > 5 -> skip", &ds, &[("k", 3)]).is_none());
        assert!(run("exists a : <x> : k > 5 -> skip", &ds, &[("k", 9)]).is_some());
    }

    #[test]
    fn abort_and_exit_flags() {
        let ds = Dataspace::new();
        let p = run("-> exit", &ds, &[]).unwrap();
        assert!(p.exit && !p.abort);
        let p = run("-> abort", &ds, &[]).unwrap();
        assert!(p.abort);
    }

    #[test]
    fn spawn_collects_args() {
        let mut sigs = HashMap::new();
        sigs.insert("W", 2usize);
        let txn = compile_txn(
            &parse_transaction("exists a : <job, a>! -> spawn W(a, k)").unwrap(),
            &sigs,
        )
        .unwrap();
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("job"), 7]);
        let p = evaluate(
            &txn,
            &ds,
            &env(&[("k", 1)]),
            &Builtins::new(),
            SolveLimits::default(),
            PlanConfig::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            p.spawns,
            vec![("W".to_owned(), vec![Value::Int(7), Value::Int(1)])]
        );
    }

    #[test]
    fn validate_detects_conflicts() {
        let mut ds = Dataspace::new();
        let id = ds.assert_tuple(ProcId::ENV, tuple![Value::atom("x"), 1]);
        let p = run("exists a : <x, a>! -> skip", &ds, &[]).unwrap();
        assert!(p.validate(&ds));
        ds.retract(id);
        assert!(!p.validate(&ds), "retract target gone");
        // Negation invalidated by a new tuple.
        let p2 = run("not <index, *> -> skip", &ds, &[]).unwrap();
        assert!(p2.validate(&ds));
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("index"), 1]);
        assert!(!p2.validate(&ds));
    }

    #[test]
    fn forall_validation_detects_solution_set_growth() {
        // The soundness hole: a tuple asserted concurrently between
        // evaluation and commit enlarges the forall's solution set
        // without touching any instance the evaluation read.
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 1]);
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 2]);
        let p = run("forall a : <v, a>! => <copy, a>, <done>", &ds, &[]).unwrap();
        assert!(p.validate(&ds));
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 99]);
        assert!(
            !p.validate(&ds),
            "concurrent assert enlarged the solution set"
        );
    }

    #[test]
    fn forall_validation_detects_vacuous_growth() {
        // Vacuous forall: zero solutions still commit the once-only
        // actions, so evidence must flow even with an empty match set.
        let mut ds = Dataspace::new();
        let p = run("forall a : <v, a> : a > 7 -> <allbig>", &ds, &[]).unwrap();
        assert_eq!(p.asserts.len(), 1);
        assert!(p.validate(&ds));
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 1]);
        assert!(!p.validate(&ds), "no longer vacuous");
    }

    #[test]
    fn forall_validation_detects_negation_retract() {
        // Retracting a tuple matched by a *negated* atom can also grow
        // the solution set — per-solution neg_checks never see it when
        // the blocked pairing produced no solution at all.
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 1]);
        let blocker = ds.assert_tuple(ProcId::ENV, tuple![Value::atom("hold"), 1]);
        let p = run("forall a : <v, a>, not <hold, a> -> <ok>", &ds, &[]).unwrap();
        assert!(p.validate(&ds));
        ds.retract(blocker);
        assert!(!p.validate(&ds), "negated match set shrank");
    }

    #[test]
    fn exists_validation_unchanged_by_unrelated_assert() {
        // exists records no forall evidence: an unrelated concurrent
        // assert must not invalidate it (no spurious retries).
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 1]);
        let p = run("exists a : <v, a>! -> <copy, a>", &ds, &[]).unwrap();
        assert!(p.forall_checks.is_empty());
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("v"), 2]);
        assert!(p.validate(&ds));
    }

    #[test]
    fn watch_set_resolves_env() {
        let txn = compile("exists a : <k, a>, not <done> => skip");
        let w = watch_set(&txn, &env(&[("k", 3)]), &Builtins::new(), true);
        // <3, a> has no functor → arity key; <done> has functor key.
        let mut change = sdl_dataspace::WatchSet::new();
        change.add_tuple(&tuple![3, 9]);
        assert!(w.intersects(&change));
        let mut done = sdl_dataspace::WatchSet::new();
        done.add_tuple(&tuple![Value::atom("done")]);
        assert!(w.intersects(&done));
        let mut unrelated = sdl_dataspace::WatchSet::new();
        unrelated.add_tuple(&tuple![Value::atom("zzz"), 1, 2]);
        assert!(!w.intersects(&unrelated));
    }

    #[test]
    fn watch_set_exact_keys_ignore_other_values() {
        // <count, k, a> with k = 7 resolved from the environment: exact
        // keys wake only on count tuples carrying 7.
        let txn = compile("exists a : <count, k, a>! => skip");
        let w = watch_set(&txn, &env(&[("k", 7)]), &Builtins::new(), true);
        let mut hit = sdl_dataspace::WatchSet::new();
        hit.add_tuple(&tuple![Value::atom("count"), 7, 1]);
        assert!(w.intersects(&hit));
        let mut miss = sdl_dataspace::WatchSet::new();
        miss.add_tuple(&tuple![Value::atom("count"), 8, 1]);
        assert!(!w.intersects(&miss), "exact key skips other values");
        // Coarse mode wakes on any count change of the right arity.
        let coarse = watch_set(&txn, &env(&[("k", 7)]), &Builtins::new(), false);
        assert!(coarse.intersects(&miss));
    }

    #[test]
    fn watch_set_negated_atoms_stay_coarse() {
        // not <lock, 7>: conservative functor subscription even under
        // exact wakes, so any lock retraction re-examines the txn.
        let txn = compile("exists a : <job, a>, not <lock, 7> => skip");
        let w = watch_set(&txn, &env(&[]), &Builtins::new(), true);
        let mut other_lock = sdl_dataspace::WatchSet::new();
        other_lock.add_tuple(&tuple![Value::atom("lock"), 8]);
        assert!(w.intersects(&other_lock), "neg atom keeps coarse channel");
    }

    #[test]
    fn plan_cache_counts_hits_misses_and_replans() {
        use sdl_metrics::{Counter, Metrics};
        let (m, reg) = Metrics::registry();
        let mut ds = Dataspace::new();
        ds.set_metrics(m);
        for i in 0..4 {
            ds.assert_tuple(ProcId::ENV, tuple![Value::atom("x"), i]);
        }
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("y"), 0]);
        let txn = compile("exists a : <x, a>, <y, a> -> skip");
        let e = env(&[]);
        let b = Builtins::standard();
        let run = |ds: &Dataspace| {
            evaluate(
                &txn,
                ds,
                &e,
                &b,
                SolveLimits::default(),
                PlanConfig::default(),
            )
            .unwrap()
        };
        run(&ds);
        assert_eq!(reg.counter(Counter::PlanCacheMiss), 1, "first plan");
        run(&ds);
        run(&ds);
        assert_eq!(reg.counter(Counter::PlanCacheHit), 2, "reused");
        assert_eq!(reg.counter(Counter::PlanReplans), 0);
        // Grow <x, _> far past the 4x+16 drift threshold: next evaluation
        // re-plans instead of trusting the stale estimates.
        for i in 0..200 {
            ds.assert_tuple(ProcId::ENV, tuple![Value::atom("x"), 100 + i]);
        }
        run(&ds);
        assert_eq!(reg.counter(Counter::PlanReplans), 1, "estimates drifted");
        assert_eq!(reg.counter(Counter::PlanCacheMiss), 1, "miss only once");
    }

    #[test]
    fn planned_and_source_order_agree() {
        // Skewed join where source order is pessimal: the planner must
        // reach the same verdict and the same committed effects.
        let mut ds = Dataspace::new();
        for i in 0..50 {
            ds.assert_tuple(ProcId::ENV, tuple![Value::atom("big"), i]);
        }
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("small"), 7]);
        let txn = compile("exists a : <big, a>!, <small, a>!, not <lock, a> -> <got, a>");
        let e = env(&[]);
        let b = Builtins::standard();
        let planned = evaluate(
            &txn,
            &ds,
            &e,
            &b,
            SolveLimits::default(),
            PlanConfig::default(),
        )
        .unwrap()
        .expect("join holds");
        let naive = evaluate(
            &txn,
            &ds,
            &e,
            &b,
            SolveLimits::default(),
            PlanConfig::source_order(),
        )
        .unwrap()
        .expect("join holds");
        assert_eq!(planned.asserts, naive.asserts);
        let mut pr = planned.retracts.clone();
        let mut nr = naive.retracts.clone();
        pr.sort();
        nr.sort();
        assert_eq!(pr, nr, "same instances consumed, any order");
        assert_eq!(planned.neg_checks, naive.neg_checks);
    }

    #[test]
    fn eval_error_in_action_surfaces() {
        let txn = compile("-> <x, 1/0>");
        let ds = Dataspace::new();
        let r = evaluate(
            &txn,
            &ds,
            &HashMap::new(),
            &Builtins::new(),
            SolveLimits::default(),
            PlanConfig::default(),
        );
        assert!(matches!(r, Err(RuntimeError::Eval { .. })));
    }

    #[test]
    fn window_restricts_evaluation() {
        use crate::view::QuerySource;
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("a"), 1]);
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("b"), 2]);
        let w: sdl_dataspace::Window = ds
            .iter()
            .filter(|(_, t)| t.functor() == Some(sdl_tuple::Atom::new("a")))
            .map(|(id, t)| sdl_tuple::TupleInstance::new(id, t.clone()))
            .collect();
        let source = QuerySource::Restricted(Box::new(w));
        let txn = compile("exists v : <b, v> -> skip");
        let r = evaluate(
            &txn,
            &source,
            &HashMap::new(),
            &Builtins::new(),
            SolveLimits::default(),
            PlanConfig::default(),
        )
        .unwrap();
        assert!(r.is_none(), "b is outside the window");
        let _ = pattern![Value::atom("b"), any];
    }

    fn watch_keys(w: &sdl_dataspace::WatchSet) -> Vec<sdl_dataspace::WatchKey> {
        let mut keys: Vec<_> = w.iter().cloned().collect();
        keys.sort_unstable_by_key(|k| format!("{k:?}"));
        keys
    }

    #[test]
    fn selective_watch_narrows_to_empty_atom() {
        // <item, k> is populated, <ack, k> is empty: the subscription
        // narrows to ack's value key alone.
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("item"), 7]);
        let txn = compile("exists a : <item, a>!, <ack, a> => <done>");
        let b = Builtins::standard();
        let narrowed = watch_set_on(&txn, &HashMap::new(), &b, true, Some(&ds));
        let keys = watch_keys(&narrowed);
        assert_eq!(keys.len(), 1, "single-atom subscription: {keys:?}");
        match &keys[0] {
            sdl_dataspace::WatchKey::Functor(f, arity) => {
                // <ack, a> has no constant argument slot, so the exact
                // subscription is the functor channel of just that atom.
                assert_eq!((f.as_str(), *arity), ("ack", 2));
            }
            other => panic!("expected ack functor key, got {other:?}"),
        }
        // An assert matching the narrowed atom publishes the key.
        let mut published = sdl_dataspace::WatchSet::new();
        published.add_tuple(&tuple![Value::atom("ack"), 7]);
        assert!(published.intersects(&narrowed), "wake must be reachable");
    }

    #[test]
    fn selective_watch_falls_back_when_all_atoms_populated() {
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("item"), 7]);
        ds.assert_tuple(ProcId::ENV, tuple![Value::atom("ack"), 9]);
        let txn = compile("exists a : <item, a>!, <ack, a> => <done>");
        let b = Builtins::standard();
        let probed = watch_set_on(&txn, &HashMap::new(), &b, true, Some(&ds));
        let full = watch_set(&txn, &HashMap::new(), &b, true);
        assert_eq!(
            watch_keys(&probed),
            watch_keys(&full),
            "no emptiness proof: keep the full per-atom subscription"
        );
    }

    #[test]
    fn selective_watch_ignores_negations_and_respects_coarse_mode() {
        let ds = Dataspace::new();
        // The negated atom is empty but must never be chosen as the
        // narrowed subscription — only positive atoms enable a txn.
        let txn = compile("exists a : <req, a>, not <busy, a> => <go, a>");
        let b = Builtins::standard();
        let w = watch_set_on(&txn, &HashMap::new(), &b, true, Some(&ds));
        let keys = watch_keys(&w);
        assert_eq!(keys.len(), 1, "{keys:?}");
        match &keys[0] {
            sdl_dataspace::WatchKey::Functor(f, _) => assert_eq!(f.as_str(), "req"),
            other => panic!("expected req functor key, got {other:?}"),
        }
        // Coarse mode (exact_wakes off) never narrows.
        let coarse = watch_set_on(&txn, &HashMap::new(), &b, false, Some(&ds));
        let full_coarse = watch_set(&txn, &HashMap::new(), &b, false);
        assert_eq!(watch_keys(&coarse), watch_keys(&full_coarse));
    }
}
