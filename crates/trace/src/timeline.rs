//! ASCII event timelines.

use std::fmt::Write as _;

use sdl_core::{Event, EventLog};

/// Renders the event log as one line per event, with logical time and a
/// compact description — the textual ancestor of the paper's envisioned
/// program visualization.
///
/// # Examples
///
/// ```
/// use sdl_core::{CompiledProgram, Runtime};
///
/// let program = CompiledProgram::from_source(
///     "process P() { -> <a>; } init { spawn P(); }",
/// ).unwrap();
/// let mut rt = Runtime::builder(program).trace(true).build().unwrap();
/// rt.run().unwrap();
/// let text = sdl_trace::timeline::render(rt.event_log().unwrap());
/// assert!(text.contains("+ <a>"));
/// ```
pub fn render(log: &EventLog) -> String {
    let mut out = String::new();
    for (step, event) in log.iter() {
        let line = match event {
            Event::TupleAsserted { by, tuple, .. } => format!("{by}  + {tuple}"),
            Event::TupleRetracted { by, tuple, .. } => format!("{by}  - {tuple}"),
            Event::ExportDropped { by, tuple } => format!("{by}  x {tuple} (export)"),
            Event::TxnCommitted { by, kind } => format!("{by}  commit {kind}"),
            Event::TxnFailed { by } => format!("{by}  fail ->"),
            Event::ProcessBlocked { id, consensus } => {
                format!(
                    "{id}  blocked{}",
                    if *consensus { " (consensus)" } else { "" }
                )
            }
            Event::ProcessCreated { id, name, args, by } => {
                let args: Vec<String> = args.iter().map(ToString::to_string).collect();
                format!("{by}  spawn {id} = {name}({})", args.join(", "))
            }
            Event::ProcessTerminated { id, aborted } => {
                format!("{id}  {}", if *aborted { "aborted" } else { "terminated" })
            }
            Event::ConsensusReached { participants } => {
                let ps: Vec<String> = participants.iter().map(ToString::to_string).collect();
                format!("**  consensus [{}]", ps.join(", "))
            }
        };
        let _ = writeln!(out, "{step:>6}  {line}");
    }
    out
}

/// Filters a rendered timeline to the lines mentioning `needle` — handy
/// for following one process or one tuple shape.
pub fn grep(log: &EventLog, needle: &str) -> String {
    render(log)
        .lines()
        .filter(|l| l.contains(needle))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_core::{CompiledProgram, Runtime};

    fn log_for(src: &str) -> Runtime {
        let program = CompiledProgram::from_source(src).unwrap();
        let mut rt = Runtime::builder(program).trace(true).build().unwrap();
        rt.run().unwrap();
        rt
    }

    #[test]
    fn renders_all_event_kinds() {
        let rt = log_for(
            "process P() {
                export { <ok, *>; }
                -> <ok, 1>, <dropped>;
                <nothing> -> <bad>;
             }
             process W(me) { <go> @> skip; }
             init { <go>; spawn P(); spawn W(1); spawn W(2); }",
        );
        let text = render(rt.event_log().unwrap());
        assert!(text.contains("+ <ok, 1>"));
        assert!(text.contains("(export)"));
        assert!(text.contains("fail ->"));
        assert!(text.contains("consensus ["));
        assert!(text.contains("spawn"));
        assert!(text.contains("terminated"));
    }

    #[test]
    fn grep_filters() {
        let rt = log_for("process P() { -> <needle, 1>, <hay>; } init { spawn P(); }");
        let hits = grep(rt.event_log().unwrap(), "needle");
        assert!(hits.contains("needle"));
        assert!(!hits.contains("hay"));
    }
}
