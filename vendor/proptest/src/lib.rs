//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free strategy framework covering the API surface the
//! repository's property tests actually use: [`Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, strategies for ranges, tuples, and
//! collections, plus the `proptest!`, `prop_oneof!`, `prop_compose!`, and
//! `prop_assert*!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the generated inputs unreduced) and cases are drawn from a generator
//! seeded by the test's module path + name, so runs are deterministic.

use std::rc::Rc;

/// Deterministic xoshiro256** generator used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds a generator from an arbitrary string (FNV-1a + SplitMix64).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A generator of test values, driven by a [`TestRng`].
pub trait Strategy: Clone {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { source: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// next-shallower level and returns the strategy for compound values.
    /// Each level mixes leaves back in so depth stays bounded by `depth`.
    /// (`desired_size`/`expected_branch_size` are accepted for API
    /// compatibility and ignored — there is no shrinking here.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Erases the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V> {
    generate: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> BoxedStrategy<V> {
    /// Wraps a raw generation function as a strategy.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> V + 'static) -> BoxedStrategy<V> {
        BoxedStrategy {
            generate: Rc::new(f),
        }
    }
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.generate)(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Map`] applies a function to another strategy's output.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `choices` must be non-empty.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            choices: self.choices.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Keep values finite and comparison-friendly.
        (rng.next_u64() as i64 as f64) / (1u64 << 32) as f64
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over a type's whole domain: `any::<i64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of another strategy's values.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option`s of another strategy's values.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// Generates `Some` of the inner strategy's values half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Per-block test configuration (see `#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` that draws `cases` inputs from a deterministic generator.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                // The body runs inside a fallible closure so property code
                // can use `?`, mirroring real proptest's TestCaseResult.
                let mut __sdl_case = move || -> ::std::result::Result<
                    (),
                    ::std::boxed::Box<dyn ::std::error::Error>,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = __sdl_case() {
                    panic!("property case failed: {e}");
                }
            }
        }
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($argn:ident: $argt:ty),* $(,)?)
            ($($pat:pat in $strat:expr),+ $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::Strategy<Value = $out> {
            $crate::BoxedStrategy::from_fn(move |rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (panics without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let r = 3i64..9;
        let v = crate::collection::vec(0usize..5, 2..7);
        for _ in 0..500 {
            assert!((3..9).contains(&r.generate(&mut rng)));
            let xs = v.generate(&mut rng);
            assert!((2..7).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_name("arms");
        let s = prop_oneof![Just(1i64), Just(2), Just(3)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_draws_are_in_range(x in 0i64..10, ys in crate::collection::vec(0i64..3, 0..4)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(ys.len() < 4, "len was {}", ys.len());
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let s = (0i64..5)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| T::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::from_name("rec");
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }
}
