//! Dining philosophers in SDL — multi-tuple atomic transactions make the
//! classic deadlock impossible by construction: a philosopher picks up
//! *both* chopsticks in one transaction or neither.
//!
//! ```sh
//! cargo run --example dining_philosophers
//! ```

use sdl::core::{CompiledProgram, Runtime};
use sdl_tuple::{pattern, Value};

const N: i64 = 5;
const MEALS: i64 = 3;

fn main() {
    let source = "
        process Philosopher(me, left, right) {
            loop {
                // Hungry and both chopsticks free: take both atomically.
                // The delayed tag (=>) keeps the philosopher waiting when
                // a neighbour holds a stick, instead of leaving the table.
                exists m : <hungry, me, m>!, <chopstick, left>!, <chopstick, right>! : m > 0
                    => <eating, me>, <hungry, me, m - 1>
              | // Done eating: put both chopsticks back.
                <eating, me>! -> <chopstick, left>, <chopstick, right>
              | // No more meals wanted and not mid-meal: leave the table.
                exists m2 : <hungry, me, m2>!, not <eating, me> : m2 == 0
                    -> <sated, me>, exit
            }
        }
    ";
    let program = CompiledProgram::from_source(source).expect("compiles");
    let mut b = Runtime::builder(program).seed(1);
    for k in 0..N {
        b = b.tuple(sdl_tuple::tuple![Value::atom("chopstick"), k]);
        b = b.tuple(sdl_tuple::tuple![Value::atom("hungry"), k, MEALS]);
        b = b.spawn(
            "Philosopher",
            vec![Value::Int(k), Value::Int(k), Value::Int((k + 1) % N)],
        );
    }
    let mut rt = b.build().expect("builds");
    let report = rt.run().expect("runs");

    assert!(report.outcome.is_completed(), "{:?}", report.outcome);
    let sated = rt
        .dataspace()
        .count_matches(&pattern![Value::atom("sated"), any]);
    let chopsticks = rt
        .dataspace()
        .count_matches(&pattern![Value::atom("chopstick"), any]);
    println!(
        "{N} philosophers each ate {MEALS} meals: {sated} sated, \
         {chopsticks} chopsticks back on the table"
    );
    println!(
        "({} transactions, {} attempts)",
        report.commits, report.attempts
    );
    assert_eq!(sated as i64, N);
    assert_eq!(chopsticks as i64, N);
    println!(
        "\nNo deadlock is possible: `<chopstick, left>!, <chopstick, right>!` \
         is one atomic transaction — a philosopher never holds one stick \
         while waiting for the other."
    );
}
