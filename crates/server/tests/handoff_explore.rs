//! Schedule exploration over the cross-loop wake handoff.
//!
//! Two engines over one [`NetShared`] run on explorer-controlled
//! threads, exactly as two event-loop workers would own them: a blocking
//! `in` parks on one loop while an `out` commits on the other. Every
//! facade lock and protocol atomic in the handoff — shard locks, router
//! mutexes, the commit epoch, the claim token, the mailbox — is a yield
//! point, so the explorer enumerates the park-vs-commit interleavings
//! the wire protocol can actually experience. The fd layer is absent by
//! design: the engine returns a kick mask and the mailbox carries the
//! wake, so the test drives delivery the way the event loop does after a
//! kick, with no sockets in the schedule space.
//!
//! The seeded mutant (`NetShared::with_mutant` skipping the park epoch
//! re-check) must be caught, replay deterministically, and export a
//! replayable schedule artifact for CI.

use std::path::PathBuf;
use std::sync::Arc;

use sdl_metrics::{Gauge, Metrics};
use sdl_server::engine::Reply;
use sdl_server::wire::{Request, Response};
use sdl_server::{Engine, NetShared};
use sdl_sync::explore::Explore;
use sdl_tuple::{pattern, tuple, Value};

/// One producer commit racing one consumer park across two loops.
/// Afterwards the consumer's loop drains its mailbox (the event loop's
/// response to a wake-fd kick); the consumer must end up holding the
/// tuple no matter how the two threads interleaved.
fn run_handoff(skip_recheck: bool) {
    let shared = Arc::new(NetShared::with_mutant(
        2,
        2,
        Metrics::disabled(),
        skip_recheck,
    ));
    let mut e0 = Engine::over(Arc::clone(&shared), 0);
    let mut e1 = Engine::over(Arc::clone(&shared), 1);
    let mut r0: Vec<Reply> = Vec::new();
    let mut r1: Vec<Reply> = Vec::new();

    sdl_sync::scope(|s| {
        let producer = (&mut e0, &mut r0);
        let consumer = (&mut e1, &mut r1);
        s.spawn(move || {
            let (e, r) = producer;
            e.submit(20, 1, Request::Out(tuple![Value::atom("job"), 5]), r);
            e.finish(r);
        });
        s.spawn(move || {
            let (e, r) = consumer;
            e.submit(10, 1, Request::In(pattern![Value::atom("job"), any]), r);
            e.finish(r);
        });
    });

    // Loop 0's commit may have kicked loop 1; deliver what its mailbox
    // holds. (Loop 0 parks nothing, so only mailbox 1 matters.)
    e1.deliver_wakes(shared.drain_mailbox(1), &mut r1);

    let got: Vec<_> = r1
        .iter()
        .filter(|(_, _, resp)| matches!(resp, Response::Tuple(_)))
        .collect();
    assert_eq!(
        got.len(),
        1,
        "consumer never got the tuple (lost wakeup): consumer={r1:?} producer={r0:?}"
    );
    assert_eq!(e1.parked_len(), 0, "consumer still parked");
    assert_eq!(shared.parked_total(), 0);
    assert_eq!(shared.live_stubs(), 0, "router stubs leaked");
    assert_eq!(e1.store_len(), 0, "the in must have retracted the tuple");
}

#[test]
fn cross_loop_handoff_explores_clean() {
    let report = Explore::new()
        .max_schedules(50_000)
        .max_steps(50_000)
        .run(|| run_handoff(false));
    assert!(
        report.failure.is_none(),
        "cross-loop handoff failed under exploration:\n{}",
        report.failure.unwrap()
    );
    assert!(report.complete, "exploration did not exhaust the tree");
    assert!(report.schedules > 1, "expected real branching");
}

/// Reverting the park epoch re-check reintroduces the cross-loop lost
/// wakeup: the commit's wake scan runs before the stub registers, the
/// epoch evidence is stale, and the consumer sleeps forever. The
/// explorer must find that interleaving, replay it from the compact
/// schedule string, and leave the artifact where CI uploads it.
#[test]
fn lost_wakeup_mutant_is_caught_and_exports_artifact() {
    let report = Explore::new()
        .max_schedules(50_000)
        .max_steps(50_000)
        .run(|| run_handoff(true));
    let failure = report
        .failure
        .expect("explorer missed the seeded cross-loop lost-wakeup mutant");
    assert!(
        failure.message.contains("lost wakeup"),
        "unexpected failure: {failure}"
    );

    let replayed = Explore::new()
        .replay(&failure.schedule, || run_handoff(true))
        .expect("pinned schedule no longer reproduces the lost wakeup");
    assert!(replayed.message.contains("lost wakeup"));

    // Same artifact pipeline as the executor mutant: schedule text plus
    // the Perfetto staircase, under SDL_SCHEDULE_ARTIFACT_DIR for CI.
    let json = sdl_trace::schedule::schedule_trace_to_string(&failure);
    sdl_trace::json::parse(&json).expect("Perfetto export must be valid JSON");
    let dir = std::env::var("SDL_SCHEDULE_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("../../target/schedule-artifacts"));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("net-lost-wakeup.schedule.txt"),
        failure.to_string(),
    )
    .unwrap();
    std::fs::write(dir.join("net-lost-wakeup.perfetto.json"), json).unwrap();
}

/// With the re-check in place, the exact interleaving the mutant fails
/// on must complete: derive the adversarial schedule from the mutant,
/// then replay it against the correct protocol.
#[test]
fn pinned_adversarial_schedule_passes_with_recheck() {
    let report = Explore::new()
        .max_schedules(50_000)
        .max_steps(50_000)
        .run(|| run_handoff(true));
    let schedule = report.failure.expect("mutant must fail").schedule;
    assert!(
        Explore::new()
            .replay(&schedule, || run_handoff(false))
            .is_none(),
        "epoch re-check lost a cross-loop wakeup on the pinned schedule"
    );
}

/// A disconnect racing the cross-loop wake: the consumer parks and its
/// loop drops the connection while the producer commits on the other
/// loop. Whatever the order, nothing leaks — the blocked gauge settles,
/// stubs are claimed, and the tuple survives unless the consumer
/// legitimately took it before the disconnect.
#[test]
fn disconnect_races_cross_loop_wake_without_residue() {
    let report = Explore::new()
        .max_schedules(50_000)
        .max_steps(50_000)
        .run(|| {
            let (metrics, registry) = Metrics::registry();
            let shared = Arc::new(NetShared::new(2, 2, metrics));
            let mut e0 = Engine::over(Arc::clone(&shared), 0);
            let mut e1 = Engine::over(Arc::clone(&shared), 1);
            let mut r0: Vec<Reply> = Vec::new();
            let mut r1: Vec<Reply> = Vec::new();

            sdl_sync::scope(|s| {
                let producer = (&mut e0, &mut r0);
                let consumer = (&mut e1, &mut r1);
                s.spawn(move || {
                    let (e, r) = producer;
                    e.submit(20, 1, Request::Out(tuple![Value::atom("job"), 5]), r);
                    e.finish(r);
                });
                s.spawn(move || {
                    let (e, r) = consumer;
                    e.submit(10, 1, Request::In(pattern![Value::atom("job"), any]), r);
                    e.finish(r);
                    // The client hangs up; its loop reaps the park. A
                    // wake may already be in flight toward mailbox 1.
                    e.disconnect(10);
                });
            });
            e1.deliver_wakes(shared.drain_mailbox(1), &mut r1);

            let took = r1
                .iter()
                .any(|(_, _, resp)| matches!(resp, Response::Tuple(_)));
            assert_eq!(e1.parked_len(), 0);
            assert_eq!(shared.parked_total(), 0);
            assert_eq!(shared.live_stubs(), 0, "router stubs leaked");
            assert_eq!(
                e1.store_len(),
                usize::from(!took),
                "tuple lost to a dead park (took={took})"
            );
            assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), 0);
            assert!(registry.gauge_min(Gauge::BlockedQueueDepth) >= 0);
        });
    assert!(
        report.failure.is_none(),
        "disconnect race leaked under exploration:\n{}",
        report.failure.unwrap()
    );
}
