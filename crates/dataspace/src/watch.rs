//! Conservative change-notification keys for delayed-transaction wake-up.
//!
//! A *delayed* transaction that fails stays blocked until "a successful
//! evaluation is possible". Re-evaluating every blocked transaction after
//! every commit is correct but wasteful; instead each commit publishes the
//! [`WatchKey`]s of the tuples it asserted or retracted, and each blocked
//! transaction registers the keys of the patterns it mentions. A blocked
//! transaction is re-examined only when the key sets intersect. The scheme
//! is conservative (may wake a transaction that still fails) and complete
//! (never misses an enabling change), which preserves the paper's weak
//! fairness guarantee.

use std::collections::HashSet;

use sdl_tuple::{Atom, Field, Pattern, Tuple};

/// A coarse description of which tuples a change could affect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WatchKey {
    /// Tuples with this leading atom and arity.
    Functor(Atom, usize),
    /// Any tuple of this arity (patterns with a non-constant head).
    Arity(usize),
}

impl WatchKey {
    /// The keys published when `tuple` is asserted or retracted.
    ///
    /// A tuple notifies both its functor key (if its head is an atom) and
    /// its arity key, since a variable-headed pattern of the same arity
    /// could match it.
    pub fn of_tuple(tuple: &Tuple) -> impl Iterator<Item = WatchKey> + '_ {
        let functor = tuple.functor().map(|f| WatchKey::Functor(f, tuple.arity()));
        functor
            .into_iter()
            .chain(std::iter::once(WatchKey::Arity(tuple.arity())))
    }

    /// The single key a pattern listens on.
    ///
    /// A pattern with a constant atom head listens on its functor key;
    /// anything else listens on the arity key (which every tuple of that
    /// arity also publishes).
    pub fn of_pattern(pattern: &Pattern) -> WatchKey {
        match pattern.functor() {
            Some(f) => WatchKey::Functor(f, pattern.arity()),
            None => WatchKey::Arity(pattern.arity()),
        }
    }
}

/// A set of [`WatchKey`]s, with the subscription-side closure applied.
///
/// Subscribing to a `Functor(f, n)` key also subscribes to `Arity(n)`
/// *matches from publications*: publication emits both keys, so plain set
/// intersection suffices. The extra subtlety is a pattern whose head field
/// is a **constant non-atom** (e.g. `<3, α>`): it has no functor, so it
/// listens on `Arity(n)` and every arity-`n` publication wakes it.
///
/// # Examples
///
/// ```
/// use sdl_dataspace::{WatchKey, WatchSet};
/// use sdl_tuple::{pattern, tuple, Value};
///
/// let mut listening = WatchSet::new();
/// listening.add_pattern(&pattern![Value::atom("year"), any]);
///
/// let mut published = WatchSet::new();
/// published.add_tuple(&tuple![Value::atom("year"), 87]);
/// assert!(listening.intersects(&published));
///
/// let mut other = WatchSet::new();
/// other.add_tuple(&tuple![Value::atom("month"), 5]);
/// assert!(!listening.intersects(&other));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WatchSet {
    keys: HashSet<WatchKey>,
}

impl WatchSet {
    /// Creates an empty watch set.
    pub fn new() -> WatchSet {
        WatchSet::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no keys are present.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Subscribes to the key of `pattern`.
    pub fn add_pattern(&mut self, pattern: &Pattern) {
        self.keys.insert(WatchKey::of_pattern(pattern));
        // A constant non-atom head still needs the arity channel; a
        // wildcard/variable head already *is* the arity channel.
        if matches!(pattern.fields().first(), Some(Field::Const(_))) && pattern.functor().is_none()
        {
            self.keys.insert(WatchKey::Arity(pattern.arity()));
        }
    }

    /// Publishes the keys of `tuple`.
    pub fn add_tuple(&mut self, tuple: &Tuple) {
        self.keys.extend(WatchKey::of_tuple(tuple));
    }

    /// Inserts a raw key.
    pub fn add_key(&mut self, key: WatchKey) {
        self.keys.insert(key);
    }

    /// Merges another set into this one.
    pub fn extend(&mut self, other: &WatchSet) {
        self.keys.extend(other.keys.iter().copied());
    }

    /// True if the two sets share a key.
    pub fn intersects(&self, other: &WatchSet) -> bool {
        let (small, large) = if self.keys.len() <= other.keys.len() {
            (&self.keys, &other.keys)
        } else {
            (&other.keys, &self.keys)
        };
        small.iter().any(|k| large.contains(k))
    }

    /// Iterates over the keys.
    pub fn iter(&self) -> impl Iterator<Item = &WatchKey> {
        self.keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_tuple::{pattern, tuple, Value};

    #[test]
    fn tuple_publishes_functor_and_arity() {
        let t = tuple![Value::atom("label"), 1, 2];
        let keys: Vec<WatchKey> = WatchKey::of_tuple(&t).collect();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&WatchKey::Functor(sdl_tuple::Atom::new("label"), 3)));
        assert!(keys.contains(&WatchKey::Arity(3)));
    }

    #[test]
    fn non_atom_head_publishes_arity_only() {
        let t = tuple![1, 2];
        let keys: Vec<WatchKey> = WatchKey::of_tuple(&t).collect();
        assert_eq!(keys, vec![WatchKey::Arity(2)]);
    }

    #[test]
    fn functor_pattern_wakes_on_matching_functor() {
        let mut sub = WatchSet::new();
        sub.add_pattern(&pattern![Value::atom("year"), any]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![Value::atom("year"), 87]);
        assert!(sub.intersects(&change));
    }

    #[test]
    fn functor_pattern_ignores_other_functor_same_arity() {
        let mut sub = WatchSet::new();
        sub.add_pattern(&pattern![Value::atom("year"), any]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![Value::atom("month"), 5]);
        assert!(!sub.intersects(&change));
    }

    #[test]
    fn variable_head_pattern_wakes_on_any_same_arity() {
        let mut sub = WatchSet::new();
        sub.add_pattern(&pattern![var 0, any]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![Value::atom("anything"), 1]);
        assert!(sub.intersects(&change));
        let mut change2 = WatchSet::new();
        change2.add_tuple(&tuple![7, 8]);
        assert!(sub.intersects(&change2));
        let mut wrong_arity = WatchSet::new();
        wrong_arity.add_tuple(&tuple![1, 2, 3]);
        assert!(!sub.intersects(&wrong_arity));
    }

    #[test]
    fn const_int_head_listens_on_arity() {
        // <3, α> has no functor; any arity-2 change must wake it.
        let mut sub = WatchSet::new();
        sub.add_pattern(&pattern![3, var 0]);
        let mut change = WatchSet::new();
        change.add_tuple(&tuple![3, 9]);
        assert!(sub.intersects(&change));
        let mut change_atom = WatchSet::new();
        change_atom.add_tuple(&tuple![Value::atom("x"), 9]);
        assert!(sub.intersects(&change_atom), "conservative wake");
    }

    #[test]
    fn set_operations() {
        let mut a = WatchSet::new();
        assert!(a.is_empty());
        a.add_key(WatchKey::Arity(2));
        assert_eq!(a.len(), 1);
        let mut b = WatchSet::new();
        b.add_key(WatchKey::Arity(3));
        assert!(!a.intersects(&b));
        b.extend(&a);
        assert!(a.intersects(&b));
        assert_eq!(b.iter().count(), 2);
    }
}
