//! Follower side of log-shipping replication: a blocking `SDLREPL1`
//! client that connects to a leader's shipper, receives its bootstrap
//! (snapshot or log resume), and then yields committed records as they
//! arrive.
//!
//! The connection is consumed from one apply thread via
//! [`FollowerConn::next_event`], which returns `Ok(None)` on a read
//! timeout so the caller can check its stop flag between events; the
//! caller reports progress back with [`FollowerConn::ack`], which is
//! what lets the leader move its retention pin and prune shipped
//! history.

use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sdl_durability::CommitRecord;
use sdl_tuple::{Tuple, TupleId};

use crate::proto::{self, Msg, MAGIC, VERSION};

/// One replication event delivered to the follower's apply thread.
#[derive(Debug)]
pub enum FollowEvent {
    /// Snapshot bootstrap: the base state to load before applying
    /// commits. Delivered at most once, before any `Commit`.
    Snapshot(SnapshotBase),
    /// One committed batch, in strict commit order.
    Commit(CommitRecord),
    /// Leader's current shippable watermark (from a heartbeat); lets
    /// the follower report lag while no commits are flowing.
    Watermark(u64),
}

/// The snapshot a leader ships to bootstrap a fresh (or lagging-
/// beyond-retention) follower.
#[derive(Debug)]
pub struct SnapshotBase {
    /// Commit number the snapshot captures.
    pub commit: u64,
    /// Shard count of the leader's store.
    pub n_shards: u64,
    /// Per-shard id-mint cursors at the snapshot.
    pub cursors: Vec<u64>,
    /// Full store contents at the snapshot.
    pub tuples: Vec<(TupleId, Tuple)>,
}

/// A follower's connection to a leader's replication listener.
pub struct FollowerConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    n_shards: u64,
    watermark: u64,
    leader_addr: String,
    /// In-flight snapshot transfer, accumulated across chunk frames.
    pending_snapshot: Option<SnapshotBase>,
}

impl FollowerConn {
    /// Connects to a leader's shipper and completes the handshake.
    /// `last_commit` is the highest commit the follower has already
    /// applied (0 for a fresh store); `n_shards` is the follower's
    /// store shard count, or 0 when it has no store yet and will adopt
    /// the leader's.
    ///
    /// # Errors
    ///
    /// Connection failure, protocol violation, or a leader rejection
    /// (version/shard mismatch, no usable bootstrap history).
    pub fn connect(addr: &str, last_commit: u64, n_shards: u64) -> io::Result<FollowerConn> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.write_all(MAGIC)?;
        let mut magic = [0u8; 8];
        stream.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad_proto("bad replication magic from leader"));
        }
        let mut conn = FollowerConn {
            stream,
            inbuf: Vec::new(),
            n_shards: 0,
            watermark: 0,
            leader_addr: String::new(),
            pending_snapshot: None,
        };
        conn.send(&Msg::Hello {
            version: VERSION,
            last_commit,
            n_shards,
        })?;
        match conn.read_msg_blocking()? {
            Msg::HelloAck {
                version,
                n_shards,
                watermark,
                leader_addr,
            } => {
                if version != VERSION {
                    return Err(bad_proto(&format!(
                        "leader speaks SDLREPL version {version}"
                    )));
                }
                conn.n_shards = n_shards;
                conn.watermark = watermark;
                conn.leader_addr = leader_addr;
            }
            Msg::Error(reason) => return Err(bad_proto(&format!("leader refused: {reason}"))),
            other => return Err(bad_proto(&format!("expected HelloAck, got {other:?}"))),
        }
        // Post-handshake the apply loop wants short timeouts so it can
        // interleave stop-flag checks.
        conn.stream
            .set_read_timeout(Some(Duration::from_millis(100)))?;
        Ok(conn)
    }

    /// Shard count of the leader's store (binding for the follower).
    pub fn n_shards(&self) -> u64 {
        self.n_shards
    }

    /// Leader's shippable watermark, as last reported.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Client-protocol address of the leader, for `NotLeader`
    /// redirects.
    pub fn leader_client_addr(&self) -> &str {
        &self.leader_addr
    }

    /// Waits for the next replication event. `Ok(None)` means the read
    /// timed out (~100 ms) with nothing complete — check the stop flag
    /// and call again. Snapshot chunk frames are accumulated
    /// internally; the snapshot surfaces as one event when complete.
    ///
    /// # Errors
    ///
    /// Connection loss, protocol violation, or a leader-reported error.
    pub fn next_event(&mut self) -> io::Result<Option<FollowEvent>> {
        loop {
            let Some(msg) = self.try_read_msg()? else {
                return Ok(None);
            };
            match msg {
                Msg::SnapBegin {
                    commit,
                    n_shards,
                    cursors,
                    n_tuples,
                } => {
                    if self.pending_snapshot.is_some() {
                        return Err(bad_proto("nested snapshot transfer"));
                    }
                    self.pending_snapshot = Some(SnapshotBase {
                        commit,
                        n_shards,
                        cursors,
                        tuples: Vec::with_capacity((n_tuples as usize).min(1 << 20)),
                    });
                }
                Msg::SnapChunk(items) => match &mut self.pending_snapshot {
                    Some(snap) => snap.tuples.extend(items),
                    None => return Err(bad_proto("snapshot chunk outside a transfer")),
                },
                Msg::SnapEnd => match self.pending_snapshot.take() {
                    Some(snap) => return Ok(Some(FollowEvent::Snapshot(snap))),
                    None => return Err(bad_proto("snapshot end outside a transfer")),
                },
                Msg::Commit(rec) => {
                    if self.pending_snapshot.is_some() {
                        return Err(bad_proto("commit inside a snapshot transfer"));
                    }
                    self.watermark = self.watermark.max(rec.commit);
                    return Ok(Some(FollowEvent::Commit(rec)));
                }
                Msg::Heartbeat(watermark) => {
                    self.watermark = self.watermark.max(watermark);
                    return Ok(Some(FollowEvent::Watermark(self.watermark)));
                }
                Msg::Error(reason) => return Err(bad_proto(&format!("leader error: {reason}"))),
                other => return Err(bad_proto(&format!("unexpected leader msg {other:?}"))),
            }
        }
    }

    /// Acknowledges that every commit up to `applied` has been applied
    /// locally. The leader moves this follower's retention pin forward
    /// in response.
    pub fn ack(&mut self, applied: u64) -> io::Result<()> {
        self.send(&Msg::Ack(applied))?;
        Ok(())
    }

    fn send(&mut self, msg: &Msg) -> io::Result<()> {
        let framed = proto::frame(&proto::encode_msg(msg));
        self.stream.write_all(&framed)
    }

    fn read_msg_blocking(&mut self) -> io::Result<Msg> {
        loop {
            if let Some(msg) = self.try_read_msg()? {
                return Ok(msg);
            }
        }
    }

    fn try_read_msg(&mut self) -> io::Result<Option<Msg>> {
        loop {
            match proto::try_frame(&self.inbuf).map_err(|e| bad_proto(&e))? {
                Some((payload, used)) => {
                    self.inbuf.drain(..used);
                    let msg = proto::decode_msg(&payload).map_err(|e| bad_proto(&e))?;
                    return Ok(Some(msg));
                }
                None => {
                    let mut chunk = [0u8; 64 * 1024];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                ErrorKind::UnexpectedEof,
                                "leader closed the replication stream",
                            ))
                        }
                        Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut =>
                        {
                            return Ok(None)
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}

fn bad_proto(what: &str) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, what.to_string())
}
