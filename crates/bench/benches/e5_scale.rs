//! E5 — large-scale concurrency: process-count scaling and threaded
//! speedup.
//!
//! The paper's goal is "programs involving many thousands of concurrent
//! processes". Series: serial-scheduler wall time per commit stays flat
//! as the society grows to 10⁴ processes; the threaded optimistic
//! executor scales a disjoint-jobs workload with core count; and the
//! sharded dataspace lets workers over disjoint *relations* commit
//! concurrently instead of serialising on one store-wide write lock
//! (shard sweep at 1/4/16).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdl_core::parallel::ParallelRuntime;
use sdl_core::{CompiledProgram, Runtime};
use sdl_tuple::{tuple, Value};

const PAIR_SRC: &str = "
    process Producer(k) { -> <item, k>; }
    process Consumer(k) { exists v : <item, k>! => ; }
";

fn pair_runtime(n: i64) -> Runtime {
    let program = CompiledProgram::from_source(PAIR_SRC).expect("compiles");
    let mut b = Runtime::builder(program).seed(1);
    for k in 0..n {
        b = b.spawn("Consumer", vec![Value::Int(k)]);
    }
    for k in 0..n {
        b = b.spawn("Producer", vec![Value::Int(k)]);
    }
    b.build().expect("builds")
}

/// Shared pool: every worker matches the same first job (deterministic
/// candidate order), so threads duplicate evaluation work and collide at
/// commit — contention-bound, no speedup. A finding, not a bug.
const SHARED_WORKER_SRC: &str = "
    process Worker() {
        loop { exists j, x : <job, j, x>! -> <done, j, work(x)> }
    }
";

/// Partitioned: worker `me` of `stride` claims jobs with `j mod stride
/// == me` — disjoint claims, conflict-free, scales with cores.
const PART_WORKER_SRC: &str = "
    process Worker(me, stride) {
        loop {
            exists j, x : <job, j, x>! : j mod stride == me
                -> <done, j, work(x)>
        }
    }
";

/// A compute-bound job body (the paper's workers "seek work in the
/// dataspace"; the work itself runs during evaluation, under the read
/// lock, so it parallelises).
fn work_builtin() -> sdl_core::Builtins {
    let mut b = sdl_core::Builtins::standard();
    b.register("work", |args: &[Value]| {
        let seed = args[0].as_int()?;
        let mut h = seed as u64 ^ 0x9e37_79b9_7f4a_7c15;
        for _ in 0..50_000u32 {
            h = h
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h ^= h >> 33;
        }
        Some(Value::Int((h % 1_000_000) as i64))
    });
    b
}

fn job_pool(jobs: i64, threads: usize, partitioned: bool) -> ParallelRuntime {
    let src = if partitioned {
        PART_WORKER_SRC
    } else {
        SHARED_WORKER_SRC
    };
    let program = CompiledProgram::from_source(src).expect("compiles");
    let mut b = ParallelRuntime::builder(program)
        .threads(threads)
        .seed(2)
        .builtins(work_builtin());
    for j in 0..jobs {
        b = b.tuple(tuple![Value::atom("job"), j, j % 97]);
    }
    let workers = threads as i64;
    for w in 0..workers {
        if partitioned {
            b = b.spawn("Worker", vec![Value::Int(w), Value::Int(workers)]);
        } else {
            b = b.spawn("Worker", vec![]);
        }
    }
    b.build().expect("builds")
}

/// Disjoint-relation workload in a large, mostly-blocked society: each
/// worker drains its *own* relation (distinct functor), so with a
/// sharded store neither evaluations nor commits of different workers
/// touch the same lock — and a population of processes parked on yet
/// other relations stands in for the paper's thousands-strong societies
/// where most processes wait. Sharding wins twice here: disjoint
/// commits stop serialising on one store-wide write lock (needs >1
/// core to show), and every commit's wake scan visits only the changed
/// shards' blocked lists instead of the entire parked population
/// (visible even on one core).
const DISJOINT_RELATIONS: usize = 8;
const PARKED_WAITERS: usize = 256;

fn disjoint_src() -> String {
    let mut s = String::new();
    for k in 0..DISJOINT_RELATIONS {
        s.push_str(&format!(
            "process W{k}() {{ loop {{ exists j : <r{k}, j>! -> <d{k}, j> }} }}\n"
        ));
    }
    for k in 0..PARKED_WAITERS {
        s.push_str(&format!("process Z{k}() {{ <never{k}> => skip; }}\n"));
    }
    s
}

fn disjoint_pool(
    program: &CompiledProgram,
    jobs_per_relation: i64,
    threads: usize,
    shards: usize,
) -> ParallelRuntime {
    let mut b = ParallelRuntime::builder(program.clone())
        .threads(threads)
        .shards(shards)
        .seed(3);
    for k in 0..DISJOINT_RELATIONS {
        for j in 0..jobs_per_relation {
            b = b.tuple(tuple![Value::atom(&format!("r{k}")), j]);
        }
    }
    for k in 0..PARKED_WAITERS {
        b = b.spawn(&format!("Z{k}"), vec![]);
    }
    for k in 0..DISJOINT_RELATIONS {
        b = b.spawn(&format!("W{k}"), vec![]);
    }
    b.build().expect("builds")
}

fn print_series() {
    eprintln!("\n# E5 series: society size scaling (serial scheduler)");
    eprintln!(
        "{:>9} | {:>12} {:>12} {:>14}",
        "processes", "commits", "time", "us/commit"
    );
    for n in [100i64, 1_000, 5_000, 10_000] {
        let mut rt = pair_runtime(n);
        let t0 = Instant::now();
        let report = rt.run().expect("runs");
        let dt = t0.elapsed();
        assert!(report.outcome.is_completed());
        eprintln!(
            "{:>9} | {:>12} {:>12?} {:>14.2}",
            2 * n,
            report.commits,
            dt,
            dt.as_micros() as f64 / report.commits as f64
        );
    }
    eprintln!(
        "\n# E5 series: threaded executor speedup (2000 compute-bound jobs; {} core(s) available)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    eprintln!(
        "{:>8} | {:>12} {:>10} {:>8} | {:>12} {:>10} {:>8}",
        "threads", "shared", "conflicts", "speedup", "partitioned", "conflicts", "speedup"
    );
    let mut base_s = None;
    let mut base_p = None;
    for threads in [1usize, 2, 4, 8] {
        let rt = job_pool(2_000, threads, false);
        let t0 = Instant::now();
        let (rep_s, _) = rt.run().expect("runs");
        let dt_s = t0.elapsed();
        assert!(rep_s.outcome.is_completed());

        let rt = job_pool(2_000, threads, true);
        let t1 = Instant::now();
        let (rep_p, _) = rt.run().expect("runs");
        let dt_p = t1.elapsed();
        assert!(rep_p.outcome.is_completed());

        let bs = *base_s.get_or_insert(dt_s.as_secs_f64());
        let bp = *base_p.get_or_insert(dt_p.as_secs_f64());
        eprintln!(
            "{:>8} | {:>12?} {:>10} {:>7.2}x | {:>12?} {:>10} {:>7.2}x",
            threads,
            dt_s,
            rep_s.conflicts,
            bs / dt_s.as_secs_f64(),
            dt_p,
            rep_p.conflicts,
            bp / dt_p.as_secs_f64()
        );
    }
    eprintln!("(shared pool: every worker chases the same first tuple and collides at commit —");
    eprintln!(" see the conflict column; partitioned claims are disjoint, 0 conflicts, and scale");
    eprintln!(" with cores — on a 1-core host, 1.0x is the physical ceiling)\n");

    eprintln!(
        "# E5 series: shard sweep, {} disjoint relations x 250 jobs, {} parked waiters, 4 threads",
        DISJOINT_RELATIONS, PARKED_WAITERS
    );
    eprintln!(
        "{:>8} | {:>12} {:>10} {:>8}",
        "shards", "time", "conflicts", "speedup"
    );
    let program = CompiledProgram::from_source(&disjoint_src()).expect("compiles");
    let mut base = None;
    for shards in [1usize, 4, 16] {
        let rt = disjoint_pool(&program, 250, 4, shards);
        let t0 = Instant::now();
        let (rep, ds) = rt.run().expect("runs");
        let dt = t0.elapsed();
        assert!(
            matches!(&rep.outcome, sdl_core::Outcome::Quiescent { blocked } if blocked.len() == PARKED_WAITERS)
        );
        assert_eq!(ds.len(), 250 * DISJOINT_RELATIONS);
        let b = *base.get_or_insert(dt.as_secs_f64());
        eprintln!(
            "{:>8} | {:>12?} {:>10} {:>7.2}x",
            shards,
            dt,
            rep.conflicts,
            b / dt.as_secs_f64()
        );
    }
    eprintln!("(shards=1 is the old single-lock executor: every commit write-locks the whole");
    eprintln!(" store, blocks every other worker, and scans the entire parked population on");
    eprintln!(" wake; sharded, disjoint relations never share a lock and commits scan only");
    eprintln!(" their own shards' blocked lists, so wall time drops with shard count)\n");
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut g = c.benchmark_group("e5_scale");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [1_000i64, 5_000] {
        g.bench_with_input(BenchmarkId::new("pairs_serial", 2 * n), &n, |b, &n| {
            b.iter(|| {
                let mut rt = pair_runtime(n);
                rt.run().expect("runs").commits
            })
        });
    }
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("jobs_partitioned", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let rt = job_pool(500, t, true);
                    rt.run().expect("runs").0.commits
                })
            },
        );
    }
    let program = CompiledProgram::from_source(&disjoint_src()).expect("compiles");
    for shards in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("jobs_disjoint_sharded", shards),
            &shards,
            |b, &s| {
                b.iter(|| {
                    let rt = disjoint_pool(&program, 100, 4, s);
                    rt.run().expect("runs").0.commits
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
