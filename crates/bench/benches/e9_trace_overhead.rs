//! E9 — causal-tracing overhead guard.
//!
//! The tracer mirrors the metrics discipline: a disabled
//! [`Tracer`](sdl_core::Tracer) is an `Option<Arc<_>>` that is `None`,
//! so the instrumented schedulers take no clock reads and allocate
//! nothing. Claims measured here:
//!
//! * **Tracing-off is free**: the serial and threaded storm workloads
//!   run at the same speed with a disabled tracer as before the
//!   instrumentation landed (`*_trace_off` vs the E7 baselines).
//! * **Tracing-on cost is bounded**: full span/commit/wake recording is
//!   a per-attempt clock-read + bounded-buffer push, not a redesign of
//!   the hot path (`*_trace_on`).
//! * **Export scales linearly**: Chrome-trace serialization of a
//!   100k-record stream is milliseconds.
//!
//! Series: full-run storm time serial/threaded × tracer off/on, raw
//! record cost, and export throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdl_core::parallel::ParallelRuntime;
use sdl_core::{CompiledProgram, Runtime, SpanPhase, TraceRecord, Tracer, Track};
use sdl_tuple::{tuple, ProcId, Value};

/// The E7 keyed-park storm: `n` consumers parked on distinct keys of a
/// hot relation, producers serialised by a token chain. Heavy on every
/// traced code path: evals, parks, wakes, commits.
fn storm_program() -> CompiledProgram {
    CompiledProgram::from_source(
        "process C(k) {
            exists x : <item, k, x>! => <got, k>, <tok, k + 1, 0>;
        }
        process P(k) {
            exists x : <tok, k, x>! => <item, k, 0>;
        }",
    )
    .expect("compiles")
}

fn run_serial(n: i64, tracer: Tracer) -> u64 {
    let mut b = Runtime::builder(storm_program())
        .tracer(tracer)
        .tuple(tuple![Value::atom("tok"), 0, 0]);
    for k in 0..n {
        b = b.spawn("C", vec![Value::Int(k)]);
        b = b.spawn("P", vec![Value::Int(k)]);
    }
    let mut rt = b.build().expect("builds");
    let report = rt.run().expect("runs");
    assert!(report.outcome.is_completed());
    report.commits
}

fn run_threaded(n: i64, tracer: Tracer) -> u64 {
    let mut b = ParallelRuntime::builder(storm_program())
        .threads(4)
        .shards(4)
        .tracer(tracer)
        .tuple(tuple![Value::atom("tok"), 0, 0]);
    for k in 0..n {
        b = b.spawn("C", vec![Value::Int(k)]);
        b = b.spawn("P", vec![Value::Int(k)]);
    }
    let (report, _) = b.build().expect("builds").run().expect("runs");
    assert!(report.outcome.is_completed());
    report.commits
}

fn synthetic_records(n: usize) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| {
            let pid = ProcId(i as u64 % 64);
            match i % 4 {
                0 => TraceRecord::Span {
                    trace: i as u64,
                    pid,
                    track: Track::Worker(i % 4),
                    phase: SpanPhase::Eval,
                    t_us: i as u64,
                    dur_us: 3,
                },
                1 => TraceRecord::Commit {
                    trace: i as u64,
                    pid,
                    track: Track::Worker(i % 4),
                    commit: i as u64 + 1,
                    t_us: i as u64,
                    dur_us: 2,
                    keys: vec!["item/3".to_owned()],
                    shards: vec![i % 4],
                },
                2 => TraceRecord::Park {
                    pid,
                    t_us: i as u64,
                    dur_us: 10,
                    keys: vec!["item/3".to_owned()],
                    outcome: sdl_core::ParkOutcome::Woken,
                },
                _ => TraceRecord::Wake {
                    pid,
                    commit: i as u64,
                    key: "item/3".to_owned(),
                    t_us: i as u64,
                },
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_trace_overhead");

    for n in [64i64, 256] {
        g.bench_with_input(
            BenchmarkId::new("storm_serial_trace_off", n),
            &n,
            |b, &n| b.iter(|| run_serial(n, Tracer::disabled())),
        );
        g.bench_with_input(BenchmarkId::new("storm_serial_trace_on", n), &n, |b, &n| {
            b.iter(|| run_serial(n, Tracer::new()))
        });
        g.bench_with_input(
            BenchmarkId::new("storm_threaded_trace_off", n),
            &n,
            |b, &n| b.iter(|| run_threaded(n, Tracer::disabled())),
        );
        g.bench_with_input(
            BenchmarkId::new("storm_threaded_trace_on", n),
            &n,
            |b, &n| b.iter(|| run_threaded(n, Tracer::new())),
        );
    }

    // Raw record cost: one bounded-buffer push, tracer enabled.
    let tracer = Tracer::new();
    let mut i = 0u64;
    g.bench_function("record_wake", |b| {
        b.iter(|| {
            i += 1;
            tracer.record(TraceRecord::Wake {
                pid: ProcId(i % 64),
                commit: i,
                key: "item/3".to_owned(),
                t_us: i,
            });
        })
    });

    // Export throughput at 100k records.
    let records = synthetic_records(100_000);
    g.bench_function("chrome_export_100k", |b| {
        b.iter(|| {
            let mut sink = std::io::sink();
            sdl_trace::perfetto::write_chrome_trace(&records, &mut sink).expect("writes");
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
