//! End-to-end schedule artifact: explore the threaded executor with the
//! seeded lost-wakeup mutant, capture the failing interleaving, and
//! write the replayable schedule (text) plus its Perfetto export (JSON)
//! where CI can upload them.
//!
//! This is the pipeline a real interleaving bug would ride: explorer
//! finds it → compact schedule string pins it → `sdl-trace` renders the
//! step staircase for a human. The test asserts every stage works, and
//! doubles as the CI check that the explorer still catches the mutant
//! within budget.

use std::path::PathBuf;

use sdl_core::parallel::ParallelRuntime;
use sdl_core::CompiledProgram;
use sdl_sync::explore::Explore;
use sdl_trace::schedule::schedule_trace_to_string;

fn run_mutant() {
    let program = CompiledProgram::from_source(
        "process Producer() { true -> <item, 1> }
         process Consumer() { exists x : <item, x>! => <got, x> }",
    )
    .unwrap();
    let (report, _ds) = ParallelRuntime::builder(program)
        .threads(2)
        .seed(7)
        .testing_skip_park_recheck(true)
        .spawn("Producer", vec![])
        .spawn("Consumer", vec![])
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(
        report.outcome.is_completed(),
        "consumer never woke: {:?}",
        report.outcome
    );
}

#[test]
fn mutant_failure_exports_replayable_artifacts() {
    let report = Explore::new()
        .max_schedules(20_000)
        .max_steps(20_000)
        .run(run_mutant);
    let failure = report
        .failure
        .expect("explorer must catch the lost-wakeup mutant in budget");

    // The schedule replays before we publish it as an artifact.
    let replayed = Explore::new()
        .replay(&failure.schedule, run_mutant)
        .expect("artifact schedule must replay to the same failure");
    assert_eq!(replayed.schedule, failure.schedule);

    let json = schedule_trace_to_string(&failure);
    sdl_trace::json::parse(&json).expect("Perfetto export must be valid JSON");

    let dir = std::env::var("SDL_SCHEDULE_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("../../target/schedule-artifacts"));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("lost-wakeup.schedule.txt"), failure.to_string()).unwrap();
    std::fs::write(dir.join("lost-wakeup.perfetto.json"), json).unwrap();
    println!(
        "schedule artifact: {} steps, schedule {}",
        failure.steps.len(),
        failure.schedule
    );
}
