//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free harness with criterion's API shape:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is plain wall-clock timing: each benchmark is warmed up,
//! then iterated in growing batches until the measurement budget is spent,
//! and the best observed ns/iter is reported on stdout. No statistics, no
//! plots, no baseline comparison — enough to eyeball relative cost.
//!
//! When invoked by `cargo test` (which passes `--test` to harness-less
//! bench binaries), [`criterion_main!`] exits immediately so benchmarks
//! don't slow the test suite.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free-standing CLI arg (if any) filters benchmarks by
        // substring, mirroring `cargo bench <filter>`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(300),
        }
    }
}

/// Identifier combining a function name and a parameter, e.g. `sum/256`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, |b| f(b));
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            best_ns_per_iter: f64::INFINITY,
            iters_timed: 0,
        };
        f(&mut bencher);
        if bencher.iters_timed == 0 {
            println!("{full:<50} (no measurement)");
        } else {
            println!(
                "{full:<50} {:>12.1} ns/iter ({} iters)",
                bencher.best_ns_per_iter, bencher.iters_timed
            );
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    best_ns_per_iter: f64,
    iters_timed: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`, keeping the best sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent (at least once),
        // and use the observed rate to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let samples = self.sample_size as f64;
        let batch = ((budget / samples / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.iters_timed += batch;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
            if measure_start.elapsed() > self.measurement_time.mul_f64(2.0) {
                break; // routine slower than the warm-up estimate suggested
            }
        }
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups (skipped under `cargo test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with `--test`;
            // benchmarks are not tests, so bail out quickly.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert!(ran || std::env::args().count() > 1);
    }
}
