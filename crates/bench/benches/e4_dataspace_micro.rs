//! E4 — dataspace microbenchmarks and the view-pragmatics claim.
//!
//! The paper (§2): views "provide bounds on the scope of the
//! transactions which, in turn, reduce the transaction execution time.
//! Thus, transaction types that might be expensive to implement may be
//! used comfortably when the number of tuples they examine is small."
//!
//! Series: query cost against dataspace size with and without the
//! functor/arg1 indexes (ablation), and a whole-dataspace `forall` vs
//! the same `forall` bounded by a view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdl_core::{CompiledProgram, Runtime};
use sdl_dataspace::{Dataspace, IndexMode, TupleSource};
use sdl_metrics::Metrics;
use sdl_tuple::{pattern, tuple, ProcId, Value};

fn populate(n: i64, mode: IndexMode) -> Dataspace {
    let mut d = Dataspace::with_index_mode(mode);
    for i in 0..n {
        d.assert_tuple(ProcId::ENV, tuple![Value::atom("label"), i, i % 17]);
        d.assert_tuple(ProcId::ENV, tuple![Value::atom("threshold"), i, i % 2]);
    }
    d
}

fn forall_sweep_runtime(n: i64, with_view: bool) -> Runtime {
    // One process repeatedly retracts its own <slot, k, v> tuples; the
    // dataspace also holds n unrelated tuples. With a view the query
    // examines ~8 tuples; without, negations and scans see everything.
    let src = if with_view {
        "process P(k) {
            import { <slot, k, *>; }
            forall v : <slot, k, v>! -> ;
         }"
    } else {
        "process P(k) {
            forall v : <slot, k, v>! -> ;
         }"
    };
    let program = CompiledProgram::from_source(src).expect("compiles");
    let mut b = Runtime::builder(program).spawn("P", vec![Value::Int(0)]);
    for i in 0..n {
        b = b.tuple(tuple![Value::atom("noise"), i, i]);
    }
    for v in 0..8i64 {
        b = b.tuple(tuple![Value::atom("slot"), 0i64, v]);
    }
    b.build().expect("builds")
}

fn print_series() {
    eprintln!("\n# E4 series: store scaling and index ablation");
    eprintln!(
        "{:>8} | {:>14} {:>14} | {:>9}",
        "|D|", "indexed (hits)", "no-index(hits)", "speedup"
    );
    for n in [1_000i64, 10_000, 100_000] {
        let indexed = populate(n, IndexMode::FunctorArity);
        let flat = populate(n, IndexMode::None);
        let probe = pattern![Value::atom("label"), n / 2, any];
        let t0 = std::time::Instant::now();
        for _ in 0..100 {
            assert_eq!(indexed.count_matches(&probe), 1);
        }
        let ti = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..100 {
            assert_eq!(flat.count_matches(&probe), 1);
        }
        let tf = t1.elapsed();
        eprintln!(
            "{:>8} | {:>14?} {:>14?} | {:>8.0}x",
            2 * n,
            ti / 100,
            tf / 100,
            tf.as_secs_f64() / ti.as_secs_f64().max(1e-12)
        );
    }
    eprintln!("(point lookups are O(1) with the functor/arg1 index, O(|D|) without)\n");
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut g = c.benchmark_group("e4_dataspace_micro");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [1_000i64, 10_000] {
        let d = populate(n, IndexMode::FunctorArity);
        g.bench_with_input(
            BenchmarkId::new("point_lookup_indexed", 2 * n),
            &d,
            |b, d| {
                let p = pattern![Value::atom("label"), n / 2, any];
                b.iter(|| d.count_matches(&p))
            },
        );
        let flat = populate(n, IndexMode::None);
        g.bench_with_input(
            BenchmarkId::new("point_lookup_flat", 2 * n),
            &flat,
            |b, d| {
                let p = pattern![Value::atom("label"), n / 2, any];
                b.iter(|| d.count_matches(&p))
            },
        );
        g.bench_with_input(BenchmarkId::new("assert_retract", 2 * n), &n, |b, &n| {
            let mut d = populate(n, IndexMode::FunctorArity);
            b.iter(|| {
                let id = d.assert_tuple(ProcId::ENV, tuple![Value::atom("x"), 1, 2]);
                d.retract(id)
            })
        });
        g.bench_with_input(BenchmarkId::new("ground_membership", 2 * n), &n, |b, &n| {
            let d = populate(n, IndexMode::FunctorArity);
            let p = pattern![Value::atom("label"), 3, 3];
            b.iter(|| d.contains_match(&p))
        });
    }
    // Telemetry overhead: the same point lookup with metrics disabled
    // (the default, a single branch per instrumentation site) vs
    // attached to a live registry (relaxed atomic increments). The two
    // should be within noise of each other — this pair is the guard.
    {
        let n = 10_000i64;
        let off = populate(n, IndexMode::FunctorArity);
        g.bench_with_input(
            BenchmarkId::new("point_lookup_metrics_off", 2 * n),
            &off,
            |b, d| {
                let p = pattern![Value::atom("label"), n / 2, any];
                b.iter(|| d.count_matches(&p))
            },
        );
        let mut on = populate(n, IndexMode::FunctorArity);
        let (metrics, _registry) = Metrics::registry();
        on.set_metrics(metrics);
        g.bench_with_input(
            BenchmarkId::new("point_lookup_metrics_on", 2 * n),
            &on,
            |b, d| {
                let p = pattern![Value::atom("label"), n / 2, any];
                b.iter(|| d.count_matches(&p))
            },
        );
    }
    for n in [1_000i64, 10_000] {
        g.bench_with_input(BenchmarkId::new("forall_with_view", n), &n, |b, &n| {
            b.iter(|| {
                let mut rt = forall_sweep_runtime(n, true);
                rt.run().expect("runs").commits
            })
        });
        g.bench_with_input(BenchmarkId::new("forall_whole_space", n), &n, |b, &n| {
            b.iter(|| {
                let mut rt = forall_sweep_runtime(n, false);
                rt.run().expect("runs").commits
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
