//! Query planning: selectivity-driven join ordering.
//!
//! The solver's default strategy matches positive atoms left to right in
//! source order, which makes the programmer responsible for writing the
//! most selective atom first. The paper expects multi-tuple transactions
//! to "examine a small number of tuples", so a bad atom order turns an
//! O(1) point lookup into a scan of the largest relation on every
//! attempt — including every wakeup retry of a blocked transaction.
//!
//! [`plan_query`] compiles a [`QueryPlan`] for a resolved atom list:
//!
//! * **Positive atoms** are greedily ordered by estimated selectivity:
//!   index-cardinality probes ([`TupleSource::estimate_candidates`])
//!   discounted for fields that earlier atoms in the plan will have
//!   bound (bound-variable propagation — a bound variable in an indexed
//!   position becomes a point lookup at runtime).
//! * **Negated atoms** are scheduled at the earliest depth where all
//!   their boundable variables are bound, so a doomed branch dies before
//!   the remaining join is enumerated. Variables appearing only under
//!   negation are existential and never delay the check.
//!
//! A plan is *always semantically valid* — any permutation of positive
//! atoms enumerates the same solution multiset (retract distinctness and
//! read sharing are order-independent) — so stale selectivity estimates
//! can cost time but never correctness. Plan choice is deterministic:
//! ties break toward source order.

use sdl_tuple::{Field, VarId};

use crate::solve::{AtomMode, QueryAtom};
use crate::store::TupleSource;

/// Whether the solver orders the join itself or trusts source order.
///
/// `SourceOrder` is the ablation baseline: it reproduces the historic
/// left-to-right behaviour exactly (all negations checked at the leaf).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// Order positive atoms by estimated selectivity and schedule
    /// negations early (default).
    #[default]
    Planned,
    /// Match atoms left to right in source order (ablation baseline).
    SourceOrder,
}

/// A compiled execution order for one conjunctive query.
///
/// Indices refer to positions in the atom slice the plan was built from;
/// the plan is only meaningful against an atom list with the same
/// modes/arities (in practice: the same compiled statement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    /// Positive (read/retract) atom indices in execution order.
    pub positive_order: Vec<usize>,
    /// For each plan depth `0..=positive_order.len()`, the negated atom
    /// indices checked once that many positive atoms have matched.
    pub neg_at_depth: Vec<Vec<usize>>,
    /// For each variable, the 1-based plan depth at which a positive atom
    /// first binds it (`None` if no positive atom binds it).
    pub bind_depth: Vec<Option<usize>>,
    /// The per-positive-atom candidate estimates the plan was built from,
    /// in *source* order — the drift baseline for plan caching.
    pub estimates: Vec<u64>,
}

impl QueryPlan {
    /// Number of positive atoms in the plan.
    pub fn positive_count(&self) -> usize {
        self.positive_order.len()
    }

    /// The plan depth at which every variable in `vars` is bound:
    /// `Some(0)` for an empty set, `None` if some variable is never bound
    /// by a positive atom. Used to re-schedule tests against the plan
    /// order.
    pub fn depth_for_vars<I: IntoIterator<Item = VarId>>(&self, vars: I) -> Option<usize> {
        let mut depth = 0usize;
        for v in vars {
            match self.bind_depth.get(v.0 as usize).copied().flatten() {
                Some(d) => depth = depth.max(d),
                None => return None,
            }
        }
        Some(depth)
    }
}

/// How strongly a bound variable in a pattern field discounts the static
/// index estimate. A bound variable usually turns a candidate-list scan
/// into (or towards) a point lookup, so the discount is aggressive; it
/// only has to *rank* atoms, not predict cardinalities.
const BOUND_FIELD_DISCOUNT: u64 = 8;

/// Estimated candidates for `atom` given the set of already-bound vars.
fn score(atom: &QueryAtom, bound: &[bool], source: &dyn TupleSource) -> u64 {
    let base = source.estimate_candidates(&atom.pattern) as u64;
    let bound_fields = atom
        .pattern
        .fields()
        .iter()
        .filter(|f| matches!(f, Field::Var(v) if bound.get(v.0 as usize).copied().unwrap_or(false)))
        .count() as u64;
    // Integer division is fine: score 0 means "at most a handful", and
    // ties break toward source order anyway.
    base / (1 + (BOUND_FIELD_DISCOUNT - 1) * bound_fields.min(2))
}

/// Builds a [`QueryPlan`] for `atoms` over `source`.
///
/// Greedy ordering: repeatedly pick the un-placed positive atom with the
/// smallest estimated candidate count (static index probe, discounted
/// for variables bound by atoms already placed), breaking ties toward
/// source order. Negations are scheduled at the earliest depth where all
/// their boundable variables are bound.
///
/// # Examples
///
/// ```
/// use sdl_dataspace::{plan_query, Dataspace, QueryAtom};
/// use sdl_tuple::{pattern, tuple, ProcId, Value};
///
/// let mut d = Dataspace::new();
/// for i in 0..100 {
///     d.assert_tuple(ProcId::ENV, tuple![Value::atom("big"), i]);
/// }
/// d.assert_tuple(ProcId::ENV, tuple![Value::atom("small"), 99]);
///
/// // Source order scans <big, α> first; the plan flips the join.
/// let atoms = vec![
///     QueryAtom::read(pattern![Value::atom("big"), var 0]),
///     QueryAtom::read(pattern![Value::atom("small"), var 0]),
/// ];
/// let plan = plan_query(&atoms, 1, &d);
/// assert_eq!(plan.positive_order, vec![1, 0]);
/// ```
pub fn plan_query(atoms: &[QueryAtom], n_vars: usize, source: &dyn TupleSource) -> QueryPlan {
    let positives: Vec<usize> = (0..atoms.len())
        .filter(|&i| atoms[i].mode != AtomMode::Neg)
        .collect();
    let estimates: Vec<u64> = positives
        .iter()
        .map(|&i| source.estimate_candidates(&atoms[i].pattern) as u64)
        .collect();

    let mut bound = vec![false; n_vars];
    let mut bind_depth: Vec<Option<usize>> = vec![None; n_vars];
    let mut remaining = positives;
    let mut positive_order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| score(&atoms[i], &bound, source))
            .map(|(slot, _)| slot)
            .expect("remaining is non-empty");
        let atom_idx = remaining.remove(best);
        positive_order.push(atom_idx);
        let depth = positive_order.len();
        for v in atoms[atom_idx].pattern.vars() {
            let slot = v.0 as usize;
            if slot < n_vars && !bound[slot] {
                bound[slot] = true;
                bind_depth[slot] = Some(depth);
            }
        }
    }

    let mut neg_at_depth = vec![Vec::new(); positive_order.len() + 1];
    for (i, atom) in atoms.iter().enumerate() {
        if atom.mode != AtomMode::Neg {
            continue;
        }
        // Earliest depth where every *boundable* variable is bound;
        // purely-existential variables don't delay the check.
        let depth = atom
            .pattern
            .vars()
            .filter_map(|v| bind_depth.get(v.0 as usize).copied().flatten())
            .max()
            .unwrap_or(0);
        neg_at_depth[depth].push(i);
    }

    QueryPlan {
        positive_order,
        neg_at_depth,
        bind_depth,
        estimates,
    }
}

/// Current per-positive-atom candidate estimates, source order — compared
/// against [`QueryPlan::estimates`] to decide whether a cached plan has
/// drifted.
pub fn estimate_positives(atoms: &[QueryAtom], source: &dyn TupleSource) -> Vec<u64> {
    atoms
        .iter()
        .filter(|a| a.mode != AtomMode::Neg)
        .map(|a| source.estimate_candidates(&a.pattern) as u64)
        .collect()
}

/// True if the live estimates have moved far enough from the plan's
/// baseline that re-ordering is worth the (cheap) replan: any atom off by
/// more than `4×` with an absolute slack of 16 candidates. The slack
/// keeps tiny stores from thrashing the cache.
pub fn estimates_drifted(baseline: &[u64], current: &[u64]) -> bool {
    if baseline.len() != current.len() {
        return true;
    }
    baseline.iter().zip(current).any(|(&old, &new)| {
        new > old.saturating_mul(4).saturating_add(16) || old > new.saturating_mul(4) + 16
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Dataspace;
    use sdl_tuple::{pattern, tuple, ProcId, Value};

    fn a(s: &str) -> Value {
        Value::atom(s)
    }

    fn skewed() -> Dataspace {
        let mut d = Dataspace::new();
        for i in 0..200 {
            d.assert_tuple(ProcId::ENV, tuple![a("big"), i]);
        }
        for i in 0..3 {
            d.assert_tuple(ProcId::ENV, tuple![a("small"), i]);
        }
        d
    }

    #[test]
    fn selective_atom_moves_first() {
        let d = skewed();
        let atoms = vec![
            QueryAtom::read(pattern![a("big"), var 0]),
            QueryAtom::retract(pattern![a("small"), var 0]),
        ];
        let plan = plan_query(&atoms, 1, &d);
        assert_eq!(plan.positive_order, vec![1, 0]);
        assert_eq!(plan.bind_depth[0], Some(1), "α bound by <small, α> first");
        assert_eq!(plan.estimates, vec![200, 3]);
    }

    #[test]
    fn ties_break_toward_source_order() {
        let mut d = Dataspace::new();
        for i in 0..5 {
            d.assert_tuple(ProcId::ENV, tuple![a("x"), i]);
            d.assert_tuple(ProcId::ENV, tuple![a("y"), i]);
        }
        let atoms = vec![
            QueryAtom::read(pattern![a("x"), var 0]),
            QueryAtom::read(pattern![a("y"), var 1]),
        ];
        let plan = plan_query(&atoms, 2, &d);
        assert_eq!(plan.positive_order, vec![0, 1]);
    }

    #[test]
    fn bound_variable_discount_propagates() {
        // <big, α> is huge statically, but once <small, α> binds α it is
        // an arg1 point lookup — the discount must still rank it after
        // the genuinely small atom.
        let d = skewed();
        let atoms = vec![
            QueryAtom::read(pattern![a("big"), var 0]),
            QueryAtom::read(pattern![a("small"), var 1]),
            QueryAtom::read(pattern![a("big"), var 1]),
        ];
        let plan = plan_query(&atoms, 2, &d);
        assert_eq!(plan.positive_order[0], 1, "small first");
        assert_eq!(
            plan.positive_order[1], 2,
            "bound-α big atom beats unbound-α big atom"
        );
    }

    #[test]
    fn negation_scheduled_at_earliest_bound_depth() {
        let d = skewed();
        let atoms = vec![
            QueryAtom::read(pattern![a("big"), var 0]),
            QueryAtom::neg(pattern![a("done"), var 0]),
            QueryAtom::neg(pattern![a("halt")]),
        ];
        let plan = plan_query(&atoms, 1, &d);
        // <halt> has no variables: checked before any match. <done, α>
        // waits for α at depth 1.
        assert_eq!(plan.neg_at_depth[0], vec![2]);
        assert_eq!(plan.neg_at_depth[1], vec![1]);
    }

    #[test]
    fn existential_negation_vars_do_not_delay() {
        let d = skewed();
        let atoms = vec![
            QueryAtom::read(pattern![a("big"), var 0]),
            QueryAtom::neg(pattern![a("lock"), var 1]),
        ];
        let plan = plan_query(&atoms, 2, &d);
        assert_eq!(plan.neg_at_depth[0], vec![1], "β is existential");
    }

    #[test]
    fn depth_for_vars_follows_plan_order() {
        let d = skewed();
        let atoms = vec![
            QueryAtom::read(pattern![a("big"), var 0]),
            QueryAtom::read(pattern![a("small"), var 1]),
        ];
        let plan = plan_query(&atoms, 3, &d);
        // Plan puts <small, β> first: β at depth 1, α at depth 2.
        assert_eq!(plan.depth_for_vars([sdl_tuple::VarId(1)]), Some(1));
        assert_eq!(plan.depth_for_vars([sdl_tuple::VarId(0)]), Some(2));
        assert_eq!(
            plan.depth_for_vars([sdl_tuple::VarId(0), sdl_tuple::VarId(1)]),
            Some(2)
        );
        assert_eq!(plan.depth_for_vars([]), Some(0));
        assert_eq!(plan.depth_for_vars([sdl_tuple::VarId(2)]), None, "unbound");
    }

    #[test]
    fn empty_query_plans() {
        let d = Dataspace::new();
        let plan = plan_query(&[], 0, &d);
        assert!(plan.positive_order.is_empty());
        assert_eq!(plan.neg_at_depth.len(), 1);
    }

    #[test]
    fn drift_detection() {
        assert!(!estimates_drifted(&[100, 3], &[100, 3]));
        assert!(!estimates_drifted(&[100, 3], &[250, 10]), "within 4x+16");
        assert!(estimates_drifted(&[100, 3], &[5000, 3]), "atom 0 grew");
        assert!(estimates_drifted(&[5000, 3], &[100, 3]), "atom 0 shrank");
        assert!(estimates_drifted(&[100], &[100, 3]), "shape change");
        assert!(
            !estimates_drifted(&[0, 0], &[10, 0]),
            "slack on tiny stores"
        );
    }
}
