//! Tokeniser for SDL source text.
//!
//! The concrete syntax is ASCII-friendly; the paper's mathematical symbols
//! are accepted as aliases:
//!
//! | paper | ASCII | meaning |
//! |-------|-------|---------|
//! | `∃`   | `exists` | existential quantifier |
//! | `∀`   | `forall` | universal quantifier |
//! | `¬`   | `not`    | negation |
//! | `→`   | `->`     | immediate transaction |
//! | `⇒`   | `=>`     | delayed transaction |
//! | `⇑`   | `@>`     | consensus transaction |
//! | `↑`   | `!`      | retraction tag |
//! | `≠`   | `!=`     | inequality |
//! | `≤`   | `<=`     | at most |
//! | `≥`   | `>=`     | at least |
//!
//! Comments run from `//` to end of line.

use std::fmt;

use crate::error::{ParseError, Pos};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier (also atom literals and process names).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `process`
    Process,
    /// `import`
    Import,
    /// `export`
    Export,
    /// `init`
    Init,
    /// `exists` / `∃`
    Exists,
    /// `forall` / `∀`
    Forall,
    /// `not` / `¬` / `~`
    Not,
    /// `and` / `&`
    And,
    /// `or`
    Or,
    /// `let`
    Let,
    /// `spawn`
    Spawn,
    /// `skip`
    Skip,
    /// `exit`
    Exit,
    /// `abort`
    Abort,
    /// `select`
    Select,
    /// `loop`
    Loop,
    /// `par` / `≡`
    Par,
    /// `true`
    True,
    /// `false`
    False,
    /// `mod`
    Mod,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `!` / `↑` (retraction tag)
    Bang,
    /// `->` / `→`
    Arrow,
    /// `=>` / `⇒`
    DArrow,
    /// `@>` / `⇑`
    CArrow,
    /// `==`
    EqEq,
    /// `=` (alias of `==` in expressions; assignment in `let`)
    Assign,
    /// `!=` / `≠`
    NeTok,
    /// `<=` / `≤`
    LeTok,
    /// `>=` / `≥`
    GeTok,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Float(x) => write!(f, "`{x}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Eof => f.write_str("end of input"),
            other => {
                let s = match other {
                    Tok::Process => "process",
                    Tok::Import => "import",
                    Tok::Export => "export",
                    Tok::Init => "init",
                    Tok::Exists => "exists",
                    Tok::Forall => "forall",
                    Tok::Not => "not",
                    Tok::And => "and",
                    Tok::Or => "or",
                    Tok::Let => "let",
                    Tok::Spawn => "spawn",
                    Tok::Skip => "skip",
                    Tok::Exit => "exit",
                    Tok::Abort => "abort",
                    Tok::Select => "select",
                    Tok::Loop => "loop",
                    Tok::Par => "par",
                    Tok::True => "true",
                    Tok::False => "false",
                    Tok::Mod => "mod",
                    Tok::Lt => "<",
                    Tok::Gt => ">",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::Semi => ";",
                    Tok::Colon => ":",
                    Tok::Comma => ",",
                    Tok::Pipe => "|",
                    Tok::Bang => "!",
                    Tok::Arrow => "->",
                    Tok::DArrow => "=>",
                    Tok::CArrow => "@>",
                    Tok::EqEq => "==",
                    Tok::Assign => "=",
                    Tok::NeTok => "!=",
                    Tok::LeTok => "<=",
                    Tok::GeTok => ">=",
                    Tok::Star => "*",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Slash => "/",
                    Tok::Caret => "^",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenises SDL source.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed numbers, unterminated strings, or
/// unrecognised characters.
///
/// # Examples
///
/// ```
/// use sdl_lang::lexer::{lex, Tok};
/// let toks = lex("exists a : <year, a> -> skip").unwrap();
/// assert_eq!(toks[0].tok, Tok::Exists);
/// assert!(matches!(toks.last().unwrap().tok, Tok::Eof));
/// ```
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars: Vec<char> = src.chars().collect();
    // Sentinel simplifies two-char lookahead.
    chars.push('\0');
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() - 1 {
        let c = chars[i];
        let p = pos!();
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '/' if chars[i + 1] == '/' => {
                while i < chars.len() - 1 && chars[i] != '\n' {
                    bump!();
                }
            }
            '0'..='9' => {
                let start = i;
                while chars[i].is_ascii_digit() {
                    bump!();
                }
                let mut is_float = false;
                if chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    bump!();
                    while chars[i].is_ascii_digit() {
                        bump!();
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| ParseError::new(format!("bad float `{text}`"), p))?,
                    )
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        ParseError::new(format!("integer out of range `{text}`"), p)
                    })?)
                };
                out.push(Spanned { tok, pos: p });
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match chars[i] {
                        '\0' => return Err(ParseError::new("unterminated string", p)),
                        '"' => {
                            bump!();
                            break;
                        }
                        '\\' => {
                            bump!();
                            let esc = chars[i];
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => {
                                    return Err(ParseError::new(
                                        format!("unknown escape `\\{other}`"),
                                        pos!(),
                                    ))
                                }
                            });
                            bump!();
                        }
                        ch => {
                            s.push(ch);
                            bump!();
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    pos: p,
                });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while chars[i].is_alphanumeric() || chars[i] == '_' {
                    bump!();
                }
                let word: String = chars[start..i].iter().collect();
                let tok = match word.as_str() {
                    "process" => Tok::Process,
                    "import" => Tok::Import,
                    "export" => Tok::Export,
                    "init" => Tok::Init,
                    "exists" => Tok::Exists,
                    "forall" => Tok::Forall,
                    "not" => Tok::Not,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "let" => Tok::Let,
                    "spawn" => Tok::Spawn,
                    "skip" => Tok::Skip,
                    "exit" => Tok::Exit,
                    "abort" => Tok::Abort,
                    "select" => Tok::Select,
                    "loop" => Tok::Loop,
                    "par" => Tok::Par,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "mod" => Tok::Mod,
                    // `behavior` (the paper's BEHAVIOR keyword) stays an
                    // identifier; the parser skips an optional
                    // `behavior { … }` wrapper.
                    _ => Tok::Ident(word),
                };
                out.push(Spanned { tok, pos: p });
            }
            '-' if chars[i + 1] == '>' => {
                bump!();
                bump!();
                out.push(Spanned {
                    tok: Tok::Arrow,
                    pos: p,
                });
            }
            '=' if chars[i + 1] == '>' => {
                bump!();
                bump!();
                out.push(Spanned {
                    tok: Tok::DArrow,
                    pos: p,
                });
            }
            '=' if chars[i + 1] == '=' => {
                bump!();
                bump!();
                out.push(Spanned {
                    tok: Tok::EqEq,
                    pos: p,
                });
            }
            '@' if chars[i + 1] == '>' => {
                bump!();
                bump!();
                out.push(Spanned {
                    tok: Tok::CArrow,
                    pos: p,
                });
            }
            '!' if chars[i + 1] == '=' => {
                bump!();
                bump!();
                out.push(Spanned {
                    tok: Tok::NeTok,
                    pos: p,
                });
            }
            '<' if chars[i + 1] == '=' => {
                bump!();
                bump!();
                out.push(Spanned {
                    tok: Tok::LeTok,
                    pos: p,
                });
            }
            '>' if chars[i + 1] == '=' => {
                bump!();
                bump!();
                out.push(Spanned {
                    tok: Tok::GeTok,
                    pos: p,
                });
            }
            _ => {
                let tok = match c {
                    '<' => Tok::Lt,
                    '>' => Tok::Gt,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    ';' => Tok::Semi,
                    ':' => Tok::Colon,
                    ',' => Tok::Comma,
                    '|' => Tok::Pipe,
                    '!' => Tok::Bang,
                    '=' => Tok::Assign,
                    '*' => Tok::Star,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '/' => Tok::Slash,
                    '^' => Tok::Caret,
                    '&' => Tok::And,
                    '~' => Tok::Not,
                    '∃' => Tok::Exists,
                    '∀' => Tok::Forall,
                    '¬' => Tok::Not,
                    '→' => Tok::Arrow,
                    '⇒' => Tok::DArrow,
                    '⇑' => Tok::CArrow,
                    '↑' => Tok::Bang,
                    '≠' => Tok::NeTok,
                    '≤' => Tok::LeTok,
                    '≥' => Tok::GeTok,
                    '≡' => Tok::Par,
                    other => {
                        return Err(ParseError::new(
                            format!("unexpected character `{other}`"),
                            p,
                        ))
                    }
                };
                bump!();
                out.push(Spanned { tok, pos: p });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("process Sum1 exists forall not"),
            vec![
                Tok::Process,
                Tok::Ident("Sum1".into()),
                Tok::Exists,
                Tok::Forall,
                Tok::Not,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 0"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Int(0), Tok::Eof]
        );
    }

    #[test]
    fn multichar_operators() {
        assert_eq!(
            toks("-> => @> == != <= >= ="),
            vec![
                Tok::Arrow,
                Tok::DArrow,
                Tok::CArrow,
                Tok::EqEq,
                Tok::NeTok,
                Tok::LeTok,
                Tok::GeTok,
                Tok::Assign,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unicode_aliases() {
        assert_eq!(
            toks("∃ ∀ ¬ → ⇒ ⇑ ↑ ≠ ≤ ≥ ≡"),
            vec![
                Tok::Exists,
                Tok::Forall,
                Tok::Not,
                Tok::Arrow,
                Tok::DArrow,
                Tok::CArrow,
                Tok::Bang,
                Tok::NeTok,
                Tok::LeTok,
                Tok::GeTok,
                Tok::Par,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tuple_syntax() {
        assert_eq!(
            toks("<year, 87>!"),
            vec![
                Tok::Lt,
                Tok::Ident("year".into()),
                Tok::Comma,
                Tok::Int(87),
                Tok::Gt,
                Tok::Bang,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment -> => \n b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""hi\n" "a\"b""#),
            vec![Tok::Str("hi\n".into()), Tok::Str("a\"b".into()), Tok::Eof]
        );
        assert!(lex("\"open").is_err());
        assert!(lex(r#""\q""#).is_err());
    }

    #[test]
    fn positions_track_lines() {
        let s = lex("a\n  b").unwrap();
        assert_eq!(s[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(s[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unknown_char_errors() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.to_string().contains('$'));
        assert_eq!(e.pos, Pos { line: 1, col: 3 });
    }

    #[test]
    fn ampersand_and_tilde_aliases() {
        assert_eq!(toks("a & ~ b")[1], Tok::And);
        assert_eq!(toks("a & ~ b")[2], Tok::Not);
    }

    #[test]
    fn behavior_is_an_ident() {
        assert_eq!(toks("behavior")[0], Tok::Ident("behavior".into()));
    }

    #[test]
    fn big_integer_errors() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
