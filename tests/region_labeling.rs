//! E3 — §3.3 region labeling: the worker model and the community model
//! both agree with a sequential flood-fill oracle, and the community
//! model's consensus communities coincide with the image's regions.

use sdl::workloads::{community_labeling_runtime, read_labels, worker_labeling_runtime, Image};
use sdl_core::Event;

const CUTOFF: i64 = 128;

#[test]
fn worker_model_matches_flood_fill() {
    for (s, seed) in [(4i64, 1u64), (6, 2), (8, 3)] {
        let image = Image::synthetic(s, s, 2, seed);
        let expected = image.flood_fill_labels(CUTOFF);
        let mut rt = worker_labeling_runtime(&image, CUTOFF, seed);
        let report = rt.run().unwrap();
        assert!(report.outcome.is_completed(), "S={s}: {:?}", report.outcome);
        assert_eq!(read_labels(&rt, image.len()), expected, "S={s} seed={seed}");
    }
}

#[test]
fn worker_model_single_region() {
    // Uniform image: one region labelled with the max pixel id.
    let image = Image {
        width: 3,
        height: 3,
        pixels: vec![10; 9],
    };
    let mut rt = worker_labeling_runtime(&image, CUTOFF, 0);
    rt.run().unwrap();
    assert_eq!(read_labels(&rt, 9), vec![8; 9]);
}

#[test]
fn community_model_matches_flood_fill() {
    for (s, seed) in [(3i64, 1u64), (4, 2), (5, 3), (6, 4)] {
        let image = Image::synthetic(s, s, 2, seed);
        let expected = image.flood_fill_labels(CUTOFF);
        let mut rt = community_labeling_runtime(&image, CUTOFF, seed);
        let report = rt.run().unwrap();
        assert!(report.outcome.is_completed(), "S={s}: {:?}", report.outcome);
        assert_eq!(read_labels(&rt, image.len()), expected, "S={s} seed={seed}");
        // Thresholds were discarded on exit ("the threshold values are
        // discarded").
        use sdl_dataspace::TupleSource;
        assert!(!rt.dataspace().contains_match(&sdl_tuple::pattern![
            sdl_tuple::Value::atom("threshold"),
            any,
            any
        ]));
    }
}

#[test]
fn community_model_one_consensus_per_region() {
    let image = Image::synthetic(5, 5, 2, 9);
    let expected = image.flood_fill_labels(CUTOFF);
    let n_regions = {
        let mut labels = expected.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len() as u64
    };
    let mut rt = community_labeling_runtime(&image, CUTOFF, 9);
    let report = rt.run().unwrap();
    assert!(report.outcome.is_completed());
    assert_eq!(
        report.consensus_rounds, n_regions,
        "each region fires exactly one consensus"
    );
}

#[test]
fn community_model_regions_finish_independently() {
    // Two separate bright pixels in a dark field: three regions. In the
    // traced run, some region's consensus fires before the global last
    // commit — regions become available before the whole image is done.
    let image = Image {
        width: 5,
        height: 1,
        pixels: vec![200, 10, 10, 10, 200],
    };
    let program =
        sdl_core::CompiledProgram::from_source(sdl::workloads::COMMUNITY_LABELING_SRC).unwrap();
    let mut b = sdl_core::Runtime::builder(program)
        .seed(3)
        .trace(true)
        .builtins(sdl::workloads::image_builtins(&image, CUTOFF));
    for (p, v) in image.pixels.iter().enumerate() {
        b = b.tuple(sdl_tuple::tuple![
            sdl_tuple::Value::atom("image"),
            p as i64,
            *v
        ]);
    }
    let mut rt = b.spawn("Threshold", vec![]).build().unwrap();
    rt.run().unwrap();
    assert_eq!(
        read_labels(&rt, image.len()),
        image.flood_fill_labels(CUTOFF)
    );
    let log = rt.event_log().unwrap();
    let first_consensus = log
        .iter()
        .position(|(_, e)| matches!(e, Event::ConsensusReached { .. }))
        .expect("some region consensus");
    let last_commit = log
        .entries()
        .iter()
        .rposition(|(_, e)| matches!(e, Event::TxnCommitted { .. }))
        .expect("commits happened");
    assert!(
        first_consensus < last_commit,
        "a region finalised before the computation ended"
    );
}

#[test]
fn worker_model_in_rounds_mode() {
    let image = Image::synthetic(6, 6, 2, 5);
    let expected = image.flood_fill_labels(CUTOFF);
    let mut rt = worker_labeling_runtime(&image, CUTOFF, 5);
    let report = rt.run_rounds().unwrap();
    assert!(report.outcome.is_completed(), "{:?}", report.outcome);
    assert_eq!(read_labels(&rt, image.len()), expected);
    // Label propagation needs at most O(diameter) rounds, far below the
    // serial commit count.
    assert!(
        report.rounds < report.commits,
        "rounds {} < commits {}",
        report.rounds,
        report.commits
    );
}

#[test]
fn checkerboard_stresses_many_regions() {
    // 4x4 checkerboard: every pixel its own region.
    let mut pixels = Vec::new();
    for y in 0..4i64 {
        for x in 0..4i64 {
            pixels.push(if (x + y) % 2 == 0 { 200 } else { 10 });
        }
    }
    let image = Image {
        width: 4,
        height: 4,
        pixels,
    };
    let expected = image.flood_fill_labels(CUTOFF);
    assert_eq!(expected, (0..16).collect::<Vec<i64>>(), "all singletons");
    let mut rt = worker_labeling_runtime(&image, CUTOFF, 0);
    rt.run().unwrap();
    assert_eq!(read_labels(&rt, 16), expected);
    let mut rt2 = community_labeling_runtime(&image, CUTOFF, 0);
    let report = rt2.run().unwrap();
    assert_eq!(read_labels(&rt2, 16), expected);
    assert_eq!(report.consensus_rounds, 16, "one consensus per singleton");
}
