//! The write-ahead-log writer: append, group commit, rotation,
//! snapshots, retention-aware pruning, and the shipping watermark
//! replication reads up to.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use sdl_metrics::{Counter, Hist, Metrics};
use sdl_tuple::{Tuple, TupleId};

use crate::codec::{crc32, frame, Enc, FRAME_HEADER};
use crate::recover::{list_files, segment_path, snapshot_path, RecoveredState};
use crate::{FsyncPolicy, WalConfig, WalError};

/// Magic bytes opening every segment file.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"SDLWAL01";
/// Magic bytes opening every snapshot file.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"SDLSNAP1";
/// Segment-header frame payload tag.
pub(crate) const REC_HEADER: u8 = 0;
/// Commit-record frame payload tag.
pub(crate) const REC_COMMIT: u8 = 1;
/// On-disk format version.
pub(crate) const FORMAT_VERSION: u32 = 1;

/// A write-ahead log open for appending. Shared across executor
/// threads behind an `Arc`; all mutation goes through one internal
/// mutex, so appends are totally ordered — that order *is* the commit
/// order recovery replays.
pub struct Wal {
    config: WalConfig,
    n_shards: u64,
    metrics: Metrics,
    inner: Mutex<WalInner>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.config.dir)
            .field("fsync", &self.config.fsync)
            .field("n_shards", &self.n_shards)
            .finish_non_exhaustive()
    }
}

struct WalInner {
    /// Open segment, buffered. `None` only transiently during rotation
    /// failures.
    file: BufWriter<File>,
    /// Bytes written to the open segment so far.
    segment_written: u64,
    /// First commit number of every live segment, ascending. The last
    /// entry is the open segment.
    segments: Vec<u64>,
    /// Next commit number to assign.
    next_commit: u64,
    /// Highest commit number appended (0 before the first append).
    appended: u64,
    /// Highest commit number known to be on stable storage.
    synced: u64,
    /// Last explicit fsync, for `FsyncPolicy::Interval`.
    last_sync: Instant,
    /// Commits appended since the last snapshot.
    since_snapshot: u64,
    /// Retention pins: `pin id → commit number`. Pruning keeps every
    /// record *after* the smallest pinned commit, so a reader (a
    /// replication tailer, typically) positioned at that commit never
    /// observes a gap.
    pins: HashMap<u64, u64>,
    /// Next retention-pin id.
    next_pin: u64,
    /// Reused encode buffer — appends are hot on every commit, so the
    /// record payload is built here instead of a fresh allocation.
    scratch: Vec<u8>,
}

impl Wal {
    /// Creates a fresh log in `config.dir` (made if missing). Fails if
    /// the directory already holds WAL history — recover it with
    /// [`crate::recover`] + [`Wal::resume`] instead of silently
    /// clobbering it.
    pub fn create(config: WalConfig, n_shards: u64, metrics: Metrics) -> Result<Wal, WalError> {
        fs::create_dir_all(&config.dir)?;
        let (segments, snapshots) = list_files(&config.dir)?;
        if !segments.is_empty() || !snapshots.is_empty() {
            return Err(WalError::Corrupt(format!(
                "{} already holds wal history; pass --recover or choose a fresh directory",
                config.dir.display()
            )));
        }
        Wal::open_at(config, n_shards, metrics, 1, 0, Vec::new())
    }

    /// Continues logging after [`crate::recover`]: opens a new segment
    /// starting at the next commit number after the recovered history.
    pub fn resume(
        config: WalConfig,
        state: &RecoveredState,
        metrics: Metrics,
    ) -> Result<Wal, WalError> {
        let (segments, _) = list_files(&config.dir)?;
        let mut existing: Vec<u64> = segments.into_iter().map(|(c, _)| c).collect();
        let first = state.last_commit + 1;
        // A run that crashed after opening a segment but before its
        // first append leaves a header-only file named for `first`;
        // recovery took no records from it, so replace it.
        if let Some(i) = existing.iter().position(|&c| c == first) {
            fs::remove_file(segment_path(&config.dir, first))?;
            existing.remove(i);
        }
        let since = state.last_commit - state.snapshot_commit;
        Wal::open_at(config, state.n_shards, metrics, first, since, existing)
    }

    fn open_at(
        config: WalConfig,
        n_shards: u64,
        metrics: Metrics,
        first_commit: u64,
        since_snapshot: u64,
        mut segments: Vec<u64>,
    ) -> Result<Wal, WalError> {
        let mut file = BufWriter::new(
            OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(segment_path(&config.dir, first_commit))?,
        );
        let header = segment_header(n_shards, first_commit);
        file.write_all(SEGMENT_MAGIC)?;
        file.write_all(&header)?;
        segments.push(first_commit);
        let inner = WalInner {
            file,
            segment_written: (SEGMENT_MAGIC.len() + header.len()) as u64,
            segments,
            next_commit: first_commit,
            appended: first_commit - 1,
            synced: first_commit - 1,
            last_sync: Instant::now(),
            since_snapshot,
            pins: HashMap::new(),
            next_pin: 0,
            scratch: Vec::new(),
        };
        Ok(Wal {
            config,
            n_shards,
            metrics,
            inner: Mutex::new(inner),
        })
    }

    /// Shard count this log was opened with.
    pub fn n_shards(&self) -> u64 {
        self.n_shards
    }

    /// Directory the log lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Highest commit number appended so far.
    pub fn last_appended(&self) -> u64 {
        self.inner.lock().unwrap().appended
    }

    /// Flushes buffered appends into the OS page cache (no fsync), so a
    /// same-host reader tailing the segment files sees every appended
    /// record. Replication shippers call this before polling the tail.
    pub fn flush_os(&self) -> Result<(), WalError> {
        let mut inner = self.inner.lock().unwrap();
        inner.file.flush()?;
        Ok(())
    }

    /// Highest commit number safe to ship to a follower: a follower
    /// must never hold records the leader would lose in a crash, so
    /// under `FsyncPolicy::Always`/`Interval` only *synced* commits
    /// ship. Under `Interval`, a due sync is taken here so the
    /// watermark keeps advancing while the committers are idle; under
    /// `Never` there is no durability promise to preserve and every
    /// appended (flushed) record ships.
    pub fn shippable_watermark(&self) -> Result<u64, WalError> {
        let mut inner = self.inner.lock().unwrap();
        match self.config.fsync {
            FsyncPolicy::Always => Ok(inner.synced),
            FsyncPolicy::Interval(every) => {
                if inner.appended > inner.synced && inner.last_sync.elapsed() >= every {
                    self.sync_inner(&mut inner)?;
                }
                Ok(inner.synced)
            }
            FsyncPolicy::Never => {
                inner.file.flush()?;
                Ok(inner.appended)
            }
        }
    }

    /// Registers a retention pin at `commit`: pruning will keep every
    /// record after `commit` (and any snapshot at or after it) until
    /// the pin moves or is released. Returns the pin id.
    pub fn pin_retention(&self, commit: u64) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let pin = inner.next_pin;
        inner.next_pin += 1;
        inner.pins.insert(pin, commit);
        pin
    }

    /// Advances pin `pin` to `commit` (never backwards — acks can
    /// arrive reordered). Unknown pins are ignored.
    pub fn move_retention(&self, pin: u64, commit: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(c) = inner.pins.get_mut(&pin) {
            *c = (*c).max(commit);
        }
    }

    /// Releases pin `pin`. History it was holding becomes prunable at
    /// the next snapshot.
    pub fn release_retention(&self, pin: u64) {
        self.inner.lock().unwrap().pins.remove(&pin);
    }

    /// Plans a follower bootstrap for a follower whose store is at
    /// `follower_last`, atomically pinning retention so the plan's
    /// history cannot be pruned out from under the shipper:
    ///
    /// * if every record after `follower_last` is still retained, the
    ///   follower resumes straight from the log (no snapshot transfer);
    /// * otherwise the newest snapshot is the base and the follower
    ///   replays the records after it.
    ///
    /// The caller must [`Wal::release_retention`] the returned pin when
    /// the follower detaches, and [`Wal::move_retention`] it forward as
    /// the follower acknowledges applied commits.
    pub fn pin_for_bootstrap(&self, follower_last: u64) -> Result<BootstrapPlan, WalError> {
        let mut inner = self.inner.lock().unwrap();
        let oldest_first = inner.segments[0];
        let (start_after, snapshot) =
            if follower_last + 1 >= oldest_first && follower_last <= inner.appended {
                (follower_last, None)
            } else {
                // The newest snapshot always has its suffix records
                // retained: pruning at snapshot time never goes past the
                // snapshot being written.
                let (_, snapshots) = list_files(&self.config.dir)?;
                match snapshots.last() {
                    Some((commit, path)) => (*commit, Some((*commit, path.clone()))),
                    None => {
                        return Err(WalError::Corrupt(format!(
                            "no snapshot to bootstrap a follower at commit {follower_last} \
                             (oldest retained record is {oldest_first})"
                        )))
                    }
                }
            };
        let pin = inner.next_pin;
        inner.next_pin += 1;
        inner.pins.insert(pin, start_after);
        Ok(BootstrapPlan {
            pin,
            start_after,
            snapshot,
        })
    }

    /// Appends one committed batch and returns its commit number.
    /// Under `FsyncPolicy::Always` the record is *not* yet durable —
    /// call [`Wal::ensure_durable`] after releasing any store locks so
    /// concurrent committers can share one fsync (group commit).
    pub fn append(
        &self,
        retracts: &[TupleId],
        asserts: &[(TupleId, Tuple)],
    ) -> Result<u64, WalError> {
        let mut inner = self.inner.lock().unwrap();
        let commit = inner.next_commit;

        let mut enc = Enc {
            buf: std::mem::take(&mut inner.scratch),
        };
        enc.buf.clear();
        enc.u8(REC_COMMIT);
        enc.u64(commit);
        enc.u32(retracts.len() as u32);
        for id in retracts {
            enc.id(*id);
        }
        enc.u32(asserts.len() as u32);
        for (id, tuple) in asserts {
            enc.id(*id);
            enc.tuple(tuple);
        }
        let framed_len = (FRAME_HEADER + enc.buf.len()) as u64;

        if inner.segment_written + framed_len > self.config.segment_bytes
            && inner.appended >= inner.segments[inner.segments.len() - 1]
        {
            self.rotate(&mut inner, commit)?;
        }
        // Write the frame in place instead of materialising a framed copy.
        inner
            .file
            .write_all(&(enc.buf.len() as u32).to_le_bytes())?;
        inner.file.write_all(&crc32(&enc.buf).to_le_bytes())?;
        inner.file.write_all(&enc.buf)?;
        inner.scratch = enc.buf;
        inner.segment_written += framed_len;
        inner.next_commit = commit + 1;
        inner.appended = commit;
        inner.since_snapshot += 1;
        self.metrics.inc(Counter::WalRecords);
        self.metrics.add(Counter::WalBytes, framed_len);

        if let FsyncPolicy::Interval(every) = self.config.fsync {
            if inner.last_sync.elapsed() >= every {
                self.sync_inner(&mut inner)?;
            }
        }
        Ok(commit)
    }

    /// Makes every record up to `commit` durable under
    /// `FsyncPolicy::Always`; a no-op under the other policies. Skips
    /// the fsync when another thread's sync already covered `commit` —
    /// that is the group-commit fast path.
    pub fn ensure_durable(&self, commit: u64) -> Result<(), WalError> {
        if self.config.fsync != FsyncPolicy::Always {
            return Ok(());
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.synced >= commit {
            return Ok(());
        }
        self.sync_inner(&mut inner)
    }

    /// Flushes and fsyncs everything appended so far, regardless of
    /// policy. Called at end of run.
    pub fn sync(&self) -> Result<(), WalError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.synced >= inner.appended {
            return Ok(());
        }
        self.sync_inner(&mut inner)
    }

    fn sync_inner(&self, inner: &mut WalInner) -> Result<(), WalError> {
        let timer = self.metrics.start_timer();
        inner.file.flush()?;
        inner.file.get_ref().sync_data()?;
        inner.synced = inner.appended;
        inner.last_sync = Instant::now();
        self.metrics.observe_timer(Hist::WalFsyncSeconds, timer);
        Ok(())
    }

    /// Closes the current segment (flushed + fsynced) and opens a new
    /// one whose first record will be `next_commit`.
    fn rotate(&self, inner: &mut WalInner, next_commit: u64) -> Result<(), WalError> {
        inner.file.flush()?;
        inner.file.get_ref().sync_data()?;
        inner.synced = inner.appended;
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(&self.config.dir, next_commit))?;
        inner.file = BufWriter::new(file);
        let header = segment_header(self.n_shards, next_commit);
        inner.file.write_all(SEGMENT_MAGIC)?;
        inner.file.write_all(&header)?;
        inner.segment_written = (SEGMENT_MAGIC.len() + header.len()) as u64;
        inner.segments.push(next_commit);
        Ok(())
    }

    /// True when `snapshot_every` commits have landed since the last
    /// snapshot. The caller takes a consistent view of the store and
    /// calls [`Wal::write_snapshot`].
    pub fn snapshot_due(&self) -> bool {
        match self.config.snapshot_every {
            Some(every) => self.inner.lock().unwrap().since_snapshot >= every,
            None => false,
        }
    }

    /// Writes a snapshot of the store as of the highest appended
    /// commit, then prunes segments and snapshots the new one makes
    /// redundant. `cursors` are the per-shard id-mint cursors
    /// (`next_seq` of each shard, in shard order); `tuples` is the full
    /// store contents. Returns the commit number the snapshot captures.
    ///
    /// The caller must guarantee `cursors`/`tuples` reflect the store
    /// exactly after the highest appended commit (serial: trivially
    /// true; threaded: hold a full-footprint read view, since appends
    /// happen under shard write locks).
    pub fn write_snapshot(
        &self,
        cursors: &[u64],
        tuples: &[(TupleId, Tuple)],
    ) -> Result<u64, WalError> {
        let commit = self.inner.lock().unwrap().appended;
        self.write_snapshot_at(commit, cursors, tuples)?;
        Ok(commit)
    }

    /// Writes a snapshot capturing the store exactly after `commit`,
    /// then prunes history the snapshot (minus retention pins and the
    /// configured retain window) makes redundant.
    ///
    /// Unlike [`Wal::write_snapshot`] the capture commit is supplied by
    /// the caller, which must have read it *while holding the same
    /// consistent view* `cursors`/`tuples` were taken under — that is
    /// what lets a background snapshotter write the copy long after the
    /// log has moved on.
    pub fn write_snapshot_at(
        &self,
        commit: u64,
        cursors: &[u64],
        tuples: &[(TupleId, Tuple)],
    ) -> Result<(), WalError> {
        let mut enc = Enc::new();
        enc.u32(FORMAT_VERSION);
        enc.u64(commit);
        enc.u64(self.n_shards);
        for &c in cursors {
            enc.u64(c);
        }
        enc.u64(tuples.len() as u64);
        for (id, tuple) in tuples {
            enc.id(*id);
            enc.tuple(tuple);
        }

        // The file write happens outside the log mutex on purpose: a
        // background snapshotter streaming a large store out must not
        // stall concurrent appends.
        let path = snapshot_path(&self.config.dir, commit);
        let tmp = path.with_extension("tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(SNAPSHOT_MAGIC)?;
        f.write_all(&frame(&enc.buf))?;
        f.sync_data()?;
        fs::rename(&tmp, &path)?;
        // Make the rename itself durable before pruning what the new
        // snapshot supersedes.
        if let Ok(dir) = File::open(&self.config.dir) {
            let _ = dir.sync_all();
        }
        let mut inner = self.inner.lock().unwrap();
        // Commits that landed while the copy was being written are not
        // covered by it; they count toward the next snapshot.
        inner.since_snapshot = inner.appended.saturating_sub(commit);
        self.prune(&mut inner, commit)?;
        Ok(())
    }

    /// Drops history a snapshot at `commit` makes redundant, bounded by
    /// the retention floor: the smallest of `commit`, every retention
    /// pin, and `appended - retain_commits`. Snapshots strictly below
    /// the floor go; a segment goes when the *next* segment starts at
    /// or below `floor + 1` (the open segment never goes).
    fn prune(&self, inner: &mut WalInner, commit: u64) -> Result<(), WalError> {
        let mut floor = commit;
        if let Some(keep) = self.config.retain_commits {
            floor = floor.min(inner.appended.saturating_sub(keep));
        }
        if let Some(&min_pin) = inner.pins.values().min() {
            floor = floor.min(min_pin);
        }
        let (_, snapshots) = list_files(&self.config.dir)?;
        for (c, path) in snapshots {
            if c < floor {
                fs::remove_file(path)?;
            }
        }
        let mut keep = Vec::with_capacity(inner.segments.len());
        for (i, &first) in inner.segments.iter().enumerate() {
            let covered = match inner.segments.get(i + 1) {
                Some(&next_first) => next_first <= floor + 1,
                None => false, // never prune the open segment
            };
            if covered {
                fs::remove_file(segment_path(&self.config.dir, first))?;
            } else {
                keep.push(first);
            }
        }
        inner.segments = keep;
        Ok(())
    }
}

/// A follower-bootstrap decision from [`Wal::pin_for_bootstrap`],
/// with retention already pinned at [`BootstrapPlan::start_after`].
#[derive(Debug)]
pub struct BootstrapPlan {
    /// Retention pin protecting records after `start_after`.
    pub pin: u64,
    /// The follower replays records `start_after + 1 ..`.
    pub start_after: u64,
    /// Snapshot `(commit, path)` the follower must load first, or
    /// `None` when it can resume from its own store.
    pub snapshot: Option<(u64, PathBuf)>,
}

fn segment_header(n_shards: u64, first_commit: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u8(REC_HEADER);
    enc.u32(FORMAT_VERSION);
    enc.u64(n_shards);
    enc.u64(first_commit);
    frame(&enc.buf)
}
