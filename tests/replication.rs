//! Log-shipping replication: the retention floor that keeps attached
//! followers gap-free through snapshot pruning, and the catchup
//! property — a follower attaching mid-stream, killed and re-attached
//! at arbitrary commit cuts, converges bit-for-bit (ids included) with
//! the leader's log.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use sdl_durability::{read_log, CommitRecord, FsyncPolicy, SegmentTailer, Wal, WalConfig};
use sdl_metrics::Metrics;
use sdl_replication::{serve_ship, FollowEvent, FollowerConn, ShipConfig};
use sdl_tuple::{tuple, ProcId, Tuple, TupleId, Value};

/// A fresh, unique scratch directory for one test case.
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "sdl-replication-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn config(dir: &Path) -> WalConfig {
    let mut c = WalConfig::new(dir);
    c.fsync = FsyncPolicy::Never;
    c.segment_bytes = 256; // rotate often so pruning has segments to drop
    c
}

/// A hand-driven single-shard leader: sequential ids (the strided mint
/// for one shard), a live-tuple model, and snapshot-when-due, exactly
/// the discipline the runtimes follow.
struct Leader {
    wal: Arc<Wal>,
    next_seq: u64,
    live: BTreeMap<TupleId, Tuple>,
}

impl Leader {
    fn new(wal: Arc<Wal>) -> Leader {
        Leader {
            wal,
            next_seq: 1,
            live: BTreeMap::new(),
        }
    }

    /// One commit: optionally retract the oldest live tuple, then
    /// assert `n_assert` fresh ones.
    fn commit(&mut self, retract_oldest: bool, n_assert: usize) {
        let mut retracts = Vec::new();
        if retract_oldest {
            if let Some((&id, _)) = self.live.iter().next() {
                retracts.push(id);
                self.live.remove(&id);
            }
        }
        let mut asserts = Vec::new();
        for _ in 0..n_assert {
            let id = TupleId {
                owner: ProcId(3),
                seq: self.next_seq,
            };
            let t = tuple![Value::atom("k"), self.next_seq as i64];
            self.next_seq += 1;
            self.live.insert(id, t.clone());
            asserts.push((id, t));
        }
        self.wal.append(&retracts, &asserts).expect("append");
        if self.wal.snapshot_due() {
            let tuples: Vec<(TupleId, Tuple)> =
                self.live.iter().map(|(id, t)| (*id, t.clone())).collect();
            self.wal
                .write_snapshot(&[self.next_seq], &tuples)
                .expect("snapshot");
        }
    }
}

/// Reads every record after `after` up to `up_to` through the tailer
/// and asserts the commit numbers are gapless.
fn tail_contiguous(dir: &Path, after: u64, up_to: u64) -> Vec<CommitRecord> {
    let mut tailer = SegmentTailer::new(dir, after).expect("tailer positions");
    let mut records = Vec::new();
    loop {
        let batch = tailer.poll(up_to, 64).expect("poll");
        if batch.is_empty() {
            break;
        }
        records.extend(batch);
    }
    let commits: Vec<u64> = records.iter().map(|r| r.commit).collect();
    let expected: Vec<u64> = (after + 1..=up_to).collect();
    assert_eq!(commits, expected, "tailer saw a gap after commit {after}");
    records
}

#[test]
fn pruning_never_drops_segments_an_attached_follower_needs() {
    let dir = temp_dir("floor");
    let mut cfg = config(&dir);
    cfg.snapshot_every = Some(6);
    let wal = Arc::new(Wal::create(cfg, 1, Metrics::disabled()).expect("create"));
    let mut leader = Leader::new(Arc::clone(&wal));

    // A slow follower attaches before any history and never acks: its
    // pin holds the whole log at commit 0.
    let plan = wal.pin_for_bootstrap(0).expect("plan");
    assert!(plan.snapshot.is_none(), "fresh log resumes from the log");
    assert_eq!(plan.start_after, 0);

    // Plenty of snapshot-due commits: without the pin these would prune.
    for k in 0..30 {
        leader.commit(k % 3 == 0, 1 + k % 2);
    }
    let last = wal.last_appended();
    wal.flush_os().expect("flush");

    // Every commit is still tailable with no gap — the floor held.
    tail_contiguous(&dir, 0, last);

    // The follower crawls to the midpoint; history behind it may go,
    // history ahead of it must not.
    let mid = last / 2;
    wal.move_retention(plan.pin, mid);
    for k in 0..12 {
        leader.commit(k % 4 == 0, 1);
    }
    let last = wal.last_appended();
    wal.flush_os().expect("flush");
    tail_contiguous(&dir, mid, last);

    // Detach: the pin releases and the next snapshot prunes freely.
    wal.release_retention(plan.pin);
    for _ in 0..8 {
        leader.commit(false, 1);
    }
    let log = read_log(&dir).expect("readable");
    assert!(
        log.records.first().is_none_or(|r| r.commit > mid),
        "released pin should let pruning advance past commit {mid}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_retain_keeps_a_log_tail_for_detached_followers() {
    let dir = temp_dir("retain");
    let mut cfg = config(&dir);
    cfg.snapshot_every = Some(5);
    cfg.retain_commits = Some(8);
    let wal = Arc::new(Wal::create(cfg, 1, Metrics::disabled()).expect("create"));
    let mut leader = Leader::new(Arc::clone(&wal));
    for k in 0..30 {
        leader.commit(k % 3 == 1, 1);
    }
    let last = wal.last_appended();
    wal.flush_os().expect("flush");

    // No follower is attached, yet the newest 8 commits survive every
    // snapshot prune, so a briefly-detached follower resumes from the
    // log instead of re-bootstrapping.
    tail_contiguous(&dir, last - 8, last);
    let plan = wal.pin_for_bootstrap(last - 8).expect("plan");
    assert!(
        plan.snapshot.is_none(),
        "a follower inside the retained tail resumes from the log"
    );
    assert_eq!(plan.start_after, last - 8);
    wal.release_retention(plan.pin);

    // A follower further back than the retained tail re-bootstraps.
    let plan = wal.pin_for_bootstrap(2).expect("plan");
    assert!(
        plan.snapshot.is_some(),
        "history at commit 2 was pruned; bootstrap must use a snapshot"
    );
    wal.release_retention(plan.pin);
    fs::remove_dir_all(&dir).ok();
}

/// Applies one shipped record to a replica map, asserting the same
/// invariants recovery enforces: retracts hit, asserts are fresh.
fn apply_record(replica: &mut BTreeMap<TupleId, Tuple>, rec: &CommitRecord) {
    for id in &rec.retracts {
        assert!(replica.remove(id).is_some(), "retract of unknown id {id:?}");
    }
    for (id, t) in &rec.asserts {
        assert!(
            replica.insert(*id, t.clone()).is_none(),
            "assert of duplicate id {id:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Follower catchup: random leader workload, the follower attaching
    /// only after `pre` commits exist, killed and re-attached at random
    /// commit cuts while the leader keeps committing — and the replica
    /// must end bit-for-bit identical to the leader's live store.
    #[test]
    fn follower_catchup_is_bit_for_bit(
        seed in 0u64..1_000,
        pre in 4usize..16,
        post in 8usize..40,
        cut_fracs in proptest::collection::vec(0.05f64..0.95, 0..3),
        snapshot_every in prop_oneof![Just(None), Just(Some(5u64))],
    ) {
        let dir = temp_dir("catchup");
        let mut cfg = config(&dir);
        cfg.snapshot_every = snapshot_every;
        let wal = Arc::new(Wal::create(cfg, 1, Metrics::disabled()).expect("create"));
        let mut leader = Leader::new(Arc::clone(&wal));

        // Deterministic op mix from the proptest seed.
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..pre {
            let r = next();
            leader.commit(r % 3 == 0, 1 + (r % 2) as usize);
        }

        let ship = serve_ship(
            ShipConfig::new("127.0.0.1:0", "unused"),
            Arc::clone(&wal),
            Metrics::disabled(),
        )
        .expect("ship server");
        let addr = ship.local_addr().to_string();

        // The leader keeps committing while the follower replays.
        let total = (pre + post) as u64 * 3; // upper bound, exact below
        let done = Arc::new(AtomicBool::new(false));
        let appender = {
            let done = Arc::clone(&done);
            let mut ops: Vec<(bool, usize)> = Vec::new();
            for _ in 0..post {
                let r = next();
                ops.push((r % 3 == 0, 1 + (r % 2) as usize));
            }
            std::thread::spawn(move || {
                for (retract, n) in ops {
                    leader.commit(retract, n);
                    std::thread::sleep(Duration::from_micros(300));
                }
                let last = leader.wal.last_appended();
                let model = leader.live.clone();
                done.store(true, Ordering::SeqCst);
                (last, model)
            })
        };
        prop_assert!(total > 0);

        // Kill points in commit space, relative to the final count.
        let final_commits = (pre + post) as u64;
        let mut kills: Vec<u64> = cut_fracs
            .iter()
            .map(|f| ((final_commits as f64) * f) as u64)
            .filter(|&c| c > 0)
            .collect();
        kills.sort_unstable();

        let mut replica: BTreeMap<TupleId, Tuple> = BTreeMap::new();
        let mut applied = 0u64;
        let mut conn = FollowerConn::connect(&addr, applied, 0).expect("attach");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            prop_assert!(Instant::now() < deadline, "catchup stalled at {applied}");
            // Killed at this cut: drop the link and re-attach from the
            // replica's own position (the leader may have pruned past
            // it, in which case the bootstrap snapshot resets us).
            if kills.first().is_some_and(|&k| applied >= k) {
                kills.remove(0);
                drop(conn);
                conn = FollowerConn::connect(&addr, applied, 1).expect("re-attach");
            }
            match conn.next_event().expect("event") {
                Some(FollowEvent::Snapshot(base)) => {
                    replica = base.tuples.into_iter().collect();
                    applied = base.commit;
                    conn.ack(applied).expect("ack");
                }
                Some(FollowEvent::Commit(rec)) => {
                    prop_assert_eq!(rec.commit, applied + 1, "commit gap");
                    apply_record(&mut replica, &rec);
                    applied = rec.commit;
                    conn.ack(applied).expect("ack");
                }
                Some(FollowEvent::Watermark(_)) | None => {}
            }
            if done.load(Ordering::SeqCst) && applied == wal.last_appended() {
                break;
            }
        }
        drop(conn);

        let (last, model) = appender.join().expect("appender");
        prop_assert_eq!(applied, last);
        // Bit-for-bit: ids, owners, and values all match the leader.
        prop_assert_eq!(replica, model);

        let mut ship = ship;
        ship.shutdown();
        fs::remove_dir_all(&dir).ok();
    }
}
