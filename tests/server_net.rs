//! End-to-end tests for the networked dataspace server: real sockets,
//! real event loop, park/wake across connections, and disconnect
//! hygiene (ISSUE acceptance: a client dropping mid-park must leave no
//! blocked-queue residue).

use std::time::{Duration, Instant};

use sdl::metrics::{Gauge, LoopCounter, Metrics, MetricsRegistry};
use sdl::server::{serve, Client, Placement, Request, Response, Server, ServerConfig};
use sdl_tuple::{pattern, tuple, Value};

fn start() -> (Server, std::sync::Arc<MetricsRegistry>) {
    let (metrics, registry) = Metrics::registry();
    let server = serve(ServerConfig::default(), metrics).expect("bind ephemeral server");
    (server, registry)
}

/// A 2-loop server placing connections round-robin, so two clients
/// deterministically land on different event loops.
fn start_two_loops() -> (Server, std::sync::Arc<MetricsRegistry>) {
    let (metrics, registry) = Metrics::registry();
    let cfg = ServerConfig {
        loops: 2,
        placement: Placement::RoundRobin,
        ..ServerConfig::default()
    };
    let server = serve(cfg, metrics).expect("bind ephemeral server");
    (server, registry)
}

/// Polls `cond` until it holds or `deadline` elapses.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn basic_ops_roundtrip() {
    let (server, _registry) = start();
    let mut c = Client::connect(server.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();

    c.ping().expect("ping");
    c.out(tuple![Value::atom("job"), 1i64]).expect("out");
    assert_eq!(
        c.try_read(pattern![Value::atom("job"), any]).expect("rdp"),
        Some(tuple![Value::atom("job"), 1i64])
    );
    assert_eq!(
        c.try_take(pattern![Value::atom("job"), 1i64]).expect("inp"),
        Some(tuple![Value::atom("job"), 1i64])
    );
    // Now gone.
    assert_eq!(
        c.try_take(pattern![Value::atom("job"), any]).expect("inp"),
        None
    );

    server.shutdown().expect("shutdown");
}

#[test]
fn txn_over_the_wire() {
    let (server, _registry) = start();
    let mut c = Client::connect(server.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();

    assert!(c.txn("-> <counter, 41>", vec![]).expect("txn out"));
    // Retracting read: consume the counter, assert its successor.
    assert!(c
        .txn("exists x : <counter, x>! : x > 0 -> <moved, x>", vec![])
        .expect("txn move"));
    assert_eq!(
        c.try_read(pattern![Value::atom("moved"), 41i64])
            .expect("rdp"),
        Some(tuple![Value::atom("moved"), 41i64])
    );
    assert_eq!(
        c.try_read(pattern![Value::atom("counter"), any])
            .expect("rdp"),
        None
    );
    // Immediate-mode transaction whose query fails reports Failed.
    assert!(!c
        .txn("exists x : <counter, x> -> <found, x>", vec![])
        .expect("txn failed"));

    server.shutdown().expect("shutdown");
}

#[test]
fn parked_in_is_served_by_another_client() {
    let (server, registry) = start();
    let mut a = Client::connect(server.addr()).expect("connect a");
    let mut b = Client::connect(server.addr()).expect("connect b");
    a.set_timeout(Some(Duration::from_secs(10))).unwrap();
    b.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // A's blocking take parks server-side: the interim Parked
    // notification proves it is registered on watch keys, not polling.
    let id = a
        .send(&Request::In(pattern![Value::atom("handoff"), any]))
        .unwrap();
    let (pid, parked) = a.recv().expect("parked notification");
    assert_eq!(pid, id);
    assert!(matches!(parked, Response::Parked), "{parked:?}");
    assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), 1);

    // B's out wakes A through the value-level watch index.
    b.out(tuple![Value::atom("handoff"), 42i64]).expect("out");
    match a.wait_for(id).expect("wake") {
        Response::Tuple(t) => assert_eq!(t, tuple![Value::atom("handoff"), 42i64]),
        other => panic!("expected tuple, got {other:?}"),
    }
    assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), 0);

    server.shutdown().expect("shutdown");
}

#[test]
fn cancel_unparks_without_consuming() {
    let (server, registry) = start();
    let mut c = Client::connect(server.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();

    let id = c
        .send(&Request::In(pattern![Value::atom("ghost"), any]))
        .unwrap();
    let (pid, parked) = c.recv().expect("parked notification");
    assert_eq!(pid, id);
    assert!(matches!(parked, Response::Parked), "{parked:?}");

    assert!(c.cancel(id).expect("cancel"));
    // The parked request answers Cancelled (held by `cancel`'s wait).
    let (rid, resp) = c.recv().expect("cancelled reply");
    assert_eq!(rid, id);
    assert!(matches!(resp, Response::Cancelled), "{resp:?}");
    assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), 0);
    // Cancelling an unknown id is a no-op Failed, not an error.
    assert!(!c.cancel(9999).expect("cancel unknown"));

    server.shutdown().expect("shutdown");
}

#[test]
fn disconnect_while_parked_leaves_no_blocked_residue() {
    let (server, registry) = start();
    let baseline = registry.gauge(Gauge::BlockedQueueDepth);

    {
        let mut a = Client::connect(server.addr()).expect("connect a");
        a.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let id = a
            .send(&Request::In(pattern![Value::atom("orphan"), any]))
            .unwrap();
        let (pid, parked) = a.recv().expect("parked notification");
        assert_eq!(pid, id);
        assert!(matches!(parked, Response::Parked), "{parked:?}");
        assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), baseline + 1);
        // Drop the connection with the request still parked.
    }

    // The event loop sees the hangup and must unpark + forget the
    // request: the blocked-queue gauge returns to baseline.
    assert!(
        wait_until(Duration::from_secs(5), || {
            registry.gauge(Gauge::BlockedQueueDepth) == baseline
        }),
        "blocked queue depth stuck at {} (baseline {})",
        registry.gauge(Gauge::BlockedQueueDepth),
        baseline
    );
    assert!(
        wait_until(Duration::from_secs(5), || {
            registry.gauge(Gauge::NetConnections) == 0
        }),
        "connection gauge stuck at {}",
        registry.gauge(Gauge::NetConnections)
    );

    // A fresh client sees a fully serviceable dataspace: the orphaned
    // pattern's tuple is NOT consumed by any leaked parked entry.
    let mut b = Client::connect(server.addr()).expect("connect b");
    b.set_timeout(Some(Duration::from_secs(10))).unwrap();
    b.out(tuple![Value::atom("orphan"), 7i64]).expect("out");
    assert_eq!(
        b.try_take(pattern![Value::atom("orphan"), any])
            .expect("inp"),
        Some(tuple![Value::atom("orphan"), 7i64])
    );

    server.shutdown().expect("shutdown");
}

#[test]
fn cross_loop_park_is_woken_by_commit_on_the_other_loop() {
    let (server, registry) = start_two_loops();
    let mut a = Client::connect(server.addr()).expect("connect a");
    let mut b = Client::connect(server.addr()).expect("connect b");
    a.set_timeout(Some(Duration::from_secs(10))).unwrap();
    b.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // Round-robin placement puts a and b on different loops (the first
    // request each sends is what releases them from the nursery).
    let id = a
        .send(&Request::In(pattern![Value::atom("bridge"), any]))
        .unwrap();
    let (pid, parked) = a.recv().expect("parked notification");
    assert_eq!(pid, id);
    assert!(matches!(parked, Response::Parked), "{parked:?}");
    assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), 1);

    // B's commit runs on the other loop; the wake must cross through
    // the mailbox + wake-fd handoff, never by polling.
    b.out(tuple![Value::atom("bridge"), 7i64]).expect("out");
    match a.wait_for(id).expect("wake") {
        Response::Tuple(t) => assert_eq!(t, tuple![Value::atom("bridge"), 7i64]),
        other => panic!("expected tuple, got {other:?}"),
    }
    assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), 0);
    let handoffs: u64 = (0..2)
        .map(|l| registry.loop_counter(l, LoopCounter::WakeHandoffs))
        .sum();
    assert_eq!(handoffs, 1, "the wake must have crossed loops");

    server.shutdown().expect("shutdown");
}

#[test]
fn cross_loop_disconnect_while_parked_settles_the_blocked_gauge() {
    let (server, registry) = start_two_loops();
    let baseline = registry.gauge(Gauge::BlockedQueueDepth);
    let mut b = Client::connect(server.addr()).expect("connect b");
    b.set_timeout(Some(Duration::from_secs(10))).unwrap();
    // Pin b to a loop before a ever parks.
    b.ping().expect("ping");

    {
        let mut a = Client::connect(server.addr()).expect("connect a");
        a.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let id = a
            .send(&Request::In(pattern![Value::atom("severed"), any]))
            .unwrap();
        let (pid, parked) = a.recv().expect("parked notification");
        assert_eq!(pid, id);
        assert!(matches!(parked, Response::Parked), "{parked:?}");
        assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), baseline + 1);
        // Drop a with the request parked; its loop is not the one b's
        // commits run on.
    }

    assert!(
        wait_until(Duration::from_secs(5), || {
            registry.gauge(Gauge::BlockedQueueDepth) == baseline
        }),
        "blocked queue depth stuck at {} (baseline {})",
        registry.gauge(Gauge::BlockedQueueDepth),
        baseline
    );

    // B's commit on the other loop finds the waiter gone: the tuple
    // must survive for a live taker, not vanish into a dead park.
    b.out(tuple![Value::atom("severed"), 1i64]).expect("out");
    assert_eq!(
        b.try_take(pattern![Value::atom("severed"), any])
            .expect("inp"),
        Some(tuple![Value::atom("severed"), 1i64])
    );
    assert_eq!(registry.gauge(Gauge::BlockedQueueDepth), baseline);

    server.shutdown().expect("shutdown");
}

#[test]
fn four_loop_server_survives_mixed_load() {
    let (metrics, registry) = Metrics::registry();
    let cfg = ServerConfig {
        loops: 4,
        placement: Placement::Affinity,
        ..ServerConfig::default()
    };
    let server = serve(cfg, metrics).expect("bind ephemeral server");
    assert_eq!(registry.gauge(Gauge::NetLoops), 4);

    let report = sdl::server::run_load(&sdl::server::LoadConfig {
        addr: server.addr().to_string(),
        sim_clients: 200,
        connections: 8,
        pipeline: 32,
        ops_per_client: 10,
        relations: 8,
        read_from: None,
    })
    .expect("load");
    assert_eq!(report.ops, 2000);
    assert_eq!(report.misses, 0, "every inp must find its out");

    // Requests were served by the loop workers (summed across loops).
    let served: u64 = (0..4)
        .map(|l| registry.loop_counter(l, LoopCounter::Requests))
        .sum();
    assert_eq!(served, 2000);

    server.shutdown().expect("shutdown");
}

#[test]
fn pipelined_requests_on_one_connection_keep_order() {
    let (server, _registry) = start();
    let mut c = Client::connect(server.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // Burst of outs followed by takes, all in flight before any reply
    // is read: per-connection program order must hold.
    let mut out_ids = Vec::new();
    for k in 0..32i64 {
        out_ids.push(
            c.send(&Request::Out(tuple![Value::atom("seq"), k]))
                .unwrap(),
        );
    }
    let mut in_ids = Vec::new();
    for k in 0..32i64 {
        in_ids.push(
            c.send(&Request::Inp(pattern![Value::atom("seq"), k]))
                .unwrap(),
        );
    }
    for id in out_ids {
        assert!(matches!(c.wait_for(id).expect("out ack"), Response::Ok));
    }
    for (k, id) in in_ids.into_iter().enumerate() {
        match c.wait_for(id).expect("inp reply") {
            Response::Tuple(t) => assert_eq!(t, tuple![Value::atom("seq"), k as i64]),
            other => panic!("inp {k} got {other:?}"),
        }
    }

    server.shutdown().expect("shutdown");
}
