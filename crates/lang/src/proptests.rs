//! Property tests: pretty-print/parse round-trips over generated ASTs.

use proptest::prelude::*;

use crate::ast::*;
use crate::parser::{parse_program, parse_transaction};

fn arb_name() -> impl Strategy<Value = String> {
    // Avoid keywords; keep names short.
    prop_oneof![
        Just("a"),
        Just("b"),
        Just("k"),
        Just("year"),
        Just("found"),
        Just("v1"),
        Just("next_id"),
    ]
    .prop_map(str::to_owned)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::int),
        arb_name().prop_map(Expr::Name),
        any::<bool>().prop_map(|b| Expr::Lit(sdl_tuple::Value::Bool(b))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::Add, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::Mul, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::Lt, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::And, l, r)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            proptest::collection::vec(inner, 0..3)
                .prop_map(|args| Expr::Call("f".to_owned(), args)),
        ]
    })
}

fn arb_pattern() -> impl Strategy<Value = PatternExpr> {
    proptest::collection::vec(
        prop_oneof![
            Just(FieldExpr::Any),
            arb_name().prop_map(|n| FieldExpr::Expr(Expr::Name(n))),
            (0i64..50).prop_map(|i| FieldExpr::Expr(Expr::int(i))),
        ],
        0..4,
    )
    .prop_map(PatternExpr::new)
}

fn arb_atom() -> impl Strategy<Value = TxnAtom> {
    prop_oneof![
        (arb_pattern(), any::<bool>())
            .prop_map(|(pattern, retract)| TxnAtom::Tuple { pattern, retract }),
        arb_pattern().prop_map(TxnAtom::Neg),
        (proptest::collection::vec(arb_expr(), 0..3), any::<bool>()).prop_map(|(args, negated)| {
            TxnAtom::Pred {
                name: "neighbor".to_owned(),
                args,
                negated,
            }
        }),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        proptest::collection::vec(arb_expr(), 1..3).prop_map(Action::Assert),
        (arb_name(), arb_expr()).prop_map(|(n, e)| Action::Let(n, e)),
        proptest::collection::vec(arb_expr(), 0..3)
            .prop_map(|args| Action::Spawn("Worker".to_owned(), args)),
        Just(Action::Skip),
        Just(Action::Exit),
        Just(Action::Abort),
    ]
}

prop_compose! {
    fn arb_txn()(
        quant in prop_oneof![Just(Quant::Exists), Just(Quant::Forall)],
        vars in proptest::collection::vec(arb_name(), 0..3),
        atoms in proptest::collection::vec(arb_atom(), 0..3),
        test in proptest::option::of(arb_expr()),
        kind in prop_oneof![
            Just(TxnKind::Immediate),
            Just(TxnKind::Delayed),
            Just(TxnKind::Consensus)
        ],
        actions in proptest::collection::vec(arb_action(), 0..3),
    ) -> Transaction {
        let mut vars = vars;
        vars.dedup();
        // A quantifier without variables prints without the quantifier
        // prefix; normalise so round-trips compare equal.
        let quant = if vars.is_empty() { Quant::Exists } else { quant };
        Transaction { quant, vars, atoms, test, kind, actions }
    }
}

proptest! {
    /// Pretty-printing a transaction and re-parsing it yields the same
    /// AST.
    #[test]
    fn txn_roundtrip(t in arb_txn()) {
        let printed = t.to_string();
        let reparsed = parse_transaction(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nsource: {printed}"));
        prop_assert_eq!(reparsed, t, "printed: {}", printed);
    }

    /// Same round-trip at the program level with a generated process.
    #[test]
    fn program_roundtrip(
        txns in proptest::collection::vec(arb_txn(), 1..4),
        params in proptest::collection::vec(arb_name(), 0..3),
    ) {
        let mut params = params;
        params.dedup();
        let p = Program {
            processes: vec![ProcessDef {
                name: "Gen".to_owned(),
                params,
                view: ViewDef::full(),
                body: txns.into_iter().map(Stmt::Txn).collect(),
            }],
            init: InitBlock::default(),
        };
        let printed = p.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nsource: {printed}"));
        prop_assert_eq!(reparsed, p, "printed: {}", printed);
    }

    /// The pretty-printed form of any generated expression parses as an
    /// expression (inside a test position) without error.
    #[test]
    fn exprs_always_reparse(e in arb_expr()) {
        let src = format!("{e} == 0 -> skip");
        // May legitimately fail only if the printed form is empty — it
        // never is.
        prop_assert!(parse_transaction(&src).is_ok(), "source: {}", src);
    }
}
