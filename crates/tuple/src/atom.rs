//! Interned symbols (atoms).
//!
//! SDL programs are full of symbolic constants — `year`, `found`, `nil`,
//! `label`, `threshold` — that appear in millions of tuples. Atoms intern
//! each distinct spelling once in a global table so that tuple fields are a
//! fixed-size copyable id and equality is an integer compare.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned symbol.
///
/// Two atoms are equal iff their spellings are equal. Interning is global
/// and thread-safe; atoms are never freed (SDL programs use a small, static
/// vocabulary of symbols).
///
/// # Examples
///
/// ```
/// use sdl_tuple::Atom;
/// let a = Atom::new("year");
/// let b = Atom::new("year");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "year");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(u32);

struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

impl Atom {
    /// Interns `name` and returns its atom.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdl_tuple::Atom;
    /// assert_eq!(Atom::new("nil"), Atom::new("nil"));
    /// assert_ne!(Atom::new("nil"), Atom::new("cons"));
    /// ```
    pub fn new(name: &str) -> Atom {
        let mut i = interner().lock().expect("atom interner poisoned");
        if let Some(&id) = i.ids.get(name) {
            return Atom(id);
        }
        let id = u32::try_from(i.names.len()).expect("too many distinct atoms");
        // Leaking is intentional: the vocabulary of symbols in an SDL
        // program is small and lives for the whole run.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(leaked);
        i.ids.insert(leaked, id);
        Atom(id)
    }

    /// Returns the spelling of this atom.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("atom interner poisoned");
        i.names[self.0 as usize]
    }

    /// The conventional `nil` atom used by SDL list structures.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdl_tuple::Atom;
    /// assert_eq!(Atom::nil().as_str(), "nil");
    /// ```
    pub fn nil() -> Atom {
        Atom::new("nil")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atom({:?})", self.as_str())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Atom {
        Atom::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Atom::new("alpha");
        let b = Atom::new("alpha");
        let c = Atom::new("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(c.as_str(), "beta");
    }

    #[test]
    fn display_is_spelling() {
        assert_eq!(Atom::new("year").to_string(), "year");
    }

    #[test]
    fn nil_is_interned_once() {
        assert_eq!(Atom::nil(), Atom::new("nil"));
    }

    #[test]
    fn atoms_from_str() {
        let a: Atom = "gamma".into();
        assert_eq!(a.as_str(), "gamma");
    }

    #[test]
    fn atoms_are_threadsafe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let name = format!("t{}", i % 4);
                    Atom::new(&name)
                })
            })
            .collect();
        let atoms: Vec<Atom> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, a) in atoms.iter().enumerate() {
            assert_eq!(a.as_str(), format!("t{}", i % 4));
        }
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Atom::new("x")).is_empty());
    }
}
