//! Variable bindings with backtracking.

use std::fmt;

use crate::pattern::VarId;
use crate::value::Value;

/// A binding environment for one query's quantified variables.
///
/// The query solver explores candidate tuples depth-first; `Bindings`
/// supports that with an undo trail: [`Bindings::mark`] takes a checkpoint
/// and [`Bindings::undo_to`] rolls back every binding made since.
///
/// # Examples
///
/// ```
/// use sdl_tuple::{Bindings, Value, VarId};
/// let mut b = Bindings::new(2);
/// let mark = b.mark();
/// b.bind(VarId(0), Value::Int(1));
/// assert!(b.is_bound(VarId(0)));
/// b.undo_to(mark);
/// assert!(!b.is_bound(VarId(0)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<Value>>,
    trail: Vec<VarId>,
}

impl Bindings {
    /// Creates an environment with `n_vars` unbound variables.
    pub fn new(n_vars: usize) -> Bindings {
        Bindings {
            slots: vec![None; n_vars],
            trail: Vec::new(),
        }
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if there are no variable slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: VarId) -> Option<&Value> {
        self.slots.get(v.0 as usize).and_then(Option::as_ref)
    }

    /// True if `v` is currently bound.
    pub fn is_bound(&self, v: VarId) -> bool {
        self.get(v).is_some()
    }

    /// Binds `v` to `value`, recording the binding on the trail.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or already bound — the solver must
    /// check with [`Bindings::get`] first (a bound variable acts as a
    /// constant, never rebinds).
    pub fn bind(&mut self, v: VarId, value: Value) {
        let slot = &mut self.slots[v.0 as usize];
        assert!(slot.is_none(), "variable {v} already bound");
        *slot = Some(value);
        self.trail.push(v);
    }

    /// Checkpoint for [`Bindings::undo_to`].
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Rolls back every binding made since `mark` was taken.
    pub fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail length checked");
            self.slots[v.0 as usize] = None;
        }
    }

    /// True if every variable is bound.
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// Snapshot of the current bindings as a plain vector (trail dropped).
    pub fn to_vec(&self) -> Vec<Option<Value>> {
        self.slots.clone()
    }

    /// Restores a snapshot taken with [`Bindings::to_vec`], resetting the
    /// trail.
    pub fn restore(&mut self, snapshot: &[Option<Value>]) {
        self.slots.clear();
        self.slots.extend_from_slice(snapshot);
        self.trail.clear();
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(v) = slot {
                if !first {
                    f.write_str(", ")?;
                }
                first = false;
                write!(f, "?{i}={v}")?;
            }
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_get() {
        let mut b = Bindings::new(3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        b.bind(VarId(1), Value::Int(5));
        assert_eq!(b.get(VarId(1)), Some(&Value::Int(5)));
        assert_eq!(b.get(VarId(0)), None);
        assert!(!b.is_complete());
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn rebinding_panics() {
        let mut b = Bindings::new(1);
        b.bind(VarId(0), Value::Int(1));
        b.bind(VarId(0), Value::Int(2));
    }

    #[test]
    fn nested_undo() {
        let mut b = Bindings::new(3);
        let m0 = b.mark();
        b.bind(VarId(0), Value::Int(0));
        let m1 = b.mark();
        b.bind(VarId(1), Value::Int(1));
        b.bind(VarId(2), Value::Int(2));
        assert!(b.is_complete());
        b.undo_to(m1);
        assert!(b.is_bound(VarId(0)));
        assert!(!b.is_bound(VarId(1)));
        assert!(!b.is_bound(VarId(2)));
        b.undo_to(m0);
        assert!(!b.is_bound(VarId(0)));
    }

    #[test]
    fn snapshot_restore() {
        let mut b = Bindings::new(2);
        b.bind(VarId(0), Value::atom("x"));
        let snap = b.to_vec();
        b.bind(VarId(1), Value::Int(1));
        b.restore(&snap);
        assert!(b.is_bound(VarId(0)));
        assert!(!b.is_bound(VarId(1)));
        // Trail was reset: undo_to(0) removes nothing.
        b.undo_to(0);
        assert!(b.is_bound(VarId(0)));
    }

    #[test]
    fn display_lists_bound_vars() {
        let mut b = Bindings::new(2);
        assert_eq!(b.to_string(), "{}");
        b.bind(VarId(1), Value::Int(9));
        assert_eq!(b.to_string(), "{?1=9}");
    }

    #[test]
    fn empty_environment() {
        let b = Bindings::new(0);
        assert!(b.is_empty());
        assert!(b.is_complete(), "vacuously complete");
    }
}
