//! Consensus sets.
//!
//! The paper defines the consensus set of a process as the closure of the
//! relation
//!
//! ```text
//! p needs q  ≡  Import(p) ∩ Import(q) ∩ D ≠ ∅
//! ```
//!
//! i.e. communities formed by import-set overlap *on the current
//! dataspace configuration*. This module computes the partition of the
//! process society into consensus sets with a union-find over shared
//! imported tuple instances. Processes with unrestricted views act as
//! hubs: they overlap with every process that imports anything (and with
//! each other whenever the dataspace is non-empty).

use std::collections::HashMap;

use sdl_dataspace::Dataspace;
use sdl_tuple::{ProcId, TupleId};

use crate::builtins::Builtins;
use crate::error::RuntimeError;
use crate::process::ProcessInstance;

struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Iterative find with full path compression — `find` recursed once
    /// per parent link, so the chain unions a large process society
    /// builds (one per consecutive pair) overflowed the stack.
    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = i;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Union by rank keeps trees logarithmic even before compression
        // touches them.
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[ra] = rb;
                self.rank[rb] += 1;
            }
        }
    }
}

/// Partitions `procs` into consensus sets over the current dataspace.
///
/// Each returned set is sorted by process id; the sets are ordered by
/// their smallest member, so the output is deterministic.
///
/// # Errors
///
/// Fails if evaluating a view rule's environment expression fails.
pub fn consensus_sets(
    procs: &[&ProcessInstance],
    ds: &Dataspace,
    builtins: &Builtins,
) -> Result<Vec<Vec<ProcId>>, RuntimeError> {
    let n = procs.len();
    let mut uf = UnionFind::new(n);

    // Unrestricted-import processes overlap with each other whenever the
    // dataspace is non-empty.
    let full: Vec<usize> = (0..n)
        .filter(|&i| procs[i].def.view.imports_everything())
        .collect();
    if !ds.is_empty() {
        for w in full.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    let hub = full.first().copied();

    // Restricted-import processes join through shared instances, and join
    // the full-view hub if they import anything at all.
    let mut owner_of: HashMap<TupleId, usize> = HashMap::new();
    for (i, p) in procs.iter().enumerate() {
        if p.def.view.imports_everything() {
            continue;
        }
        let ids = p.def.view.import_ids(ds, &p.env, builtins)?;
        if ids.is_empty() {
            continue;
        }
        if let Some(h) = hub {
            uf.union(i, h);
        }
        for id in ids {
            match owner_of.get(&id) {
                Some(&j) => uf.union(i, j),
                None => {
                    owner_of.insert(id, i);
                }
            }
        }
    }

    // Collect classes.
    let mut classes: HashMap<usize, Vec<ProcId>> = HashMap::new();
    for (i, p) in procs.iter().enumerate() {
        let root = uf.find(i);
        classes.entry(root).or_default().push(p.id);
    }
    let mut out: Vec<Vec<ProcId>> = classes.into_values().collect();
    for set in &mut out {
        set.sort_unstable();
    }
    out.sort_by_key(|s| s[0]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CompiledProgram;
    use sdl_tuple::{tuple, Value};

    fn make_procs(src: &str, spawns: &[(&str, Vec<Value>)]) -> Vec<ProcessInstance> {
        let prog = sdl_lang::parse_program(src).unwrap();
        let c = CompiledProgram::compile(&prog).unwrap();
        spawns
            .iter()
            .enumerate()
            .map(|(i, (name, args))| {
                ProcessInstance::new(
                    ProcId(i as u64 + 1),
                    c.def(name).unwrap().clone(),
                    args.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn full_views_form_one_set_when_dataspace_nonempty() {
        let procs = make_procs(
            "process P() { -> skip; }",
            &[("P", vec![]), ("P", vec![]), ("P", vec![])],
        );
        let refs: Vec<&ProcessInstance> = procs.iter().collect();
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![1]);
        let sets = consensus_sets(&refs, &ds, &Builtins::new()).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 3);
    }

    #[test]
    fn full_views_are_singletons_on_empty_dataspace() {
        let procs = make_procs("process P() { -> skip; }", &[("P", vec![]), ("P", vec![])]);
        let refs: Vec<&ProcessInstance> = procs.iter().collect();
        let ds = Dataspace::new();
        let sets = consensus_sets(&refs, &ds, &Builtins::new()).unwrap();
        assert_eq!(sets.len(), 2, "Import(p) ∩ Import(q) ∩ ∅ = ∅");
    }

    #[test]
    fn sort_style_chain_is_one_community() {
        // Sort(i, i+1) imports <i,*> and <i+1,*>: consecutive processes
        // overlap pairwise, forming one chain community.
        let src = "process Sort(this, next) { import { <this, *>; <next, *>; } -> skip; }";
        let procs = make_procs(
            src,
            &[
                ("Sort", vec![Value::Int(1), Value::Int(2)]),
                ("Sort", vec![Value::Int(2), Value::Int(3)]),
                ("Sort", vec![Value::Int(3), Value::Int(4)]),
            ],
        );
        let refs: Vec<&ProcessInstance> = procs.iter().collect();
        let mut ds = Dataspace::new();
        for i in 1..=4i64 {
            ds.assert_tuple(ProcId::ENV, tuple![i, i * 10]);
        }
        let sets = consensus_sets(&refs, &ds, &Builtins::new()).unwrap();
        assert_eq!(sets.len(), 1, "chain closes transitively");
        assert_eq!(sets[0].len(), 3);
    }

    #[test]
    fn disjoint_views_form_separate_communities() {
        let src = "process W(x) { import { <x, *>; } -> skip; }";
        let procs = make_procs(
            src,
            &[
                ("W", vec![Value::Int(1)]),
                ("W", vec![Value::Int(1)]),
                ("W", vec![Value::Int(2)]),
            ],
        );
        let refs: Vec<&ProcessInstance> = procs.iter().collect();
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![1, 10]);
        ds.assert_tuple(ProcId::ENV, tuple![2, 20]);
        let sets = consensus_sets(&refs, &ds, &Builtins::new()).unwrap();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0], vec![ProcId(1), ProcId(2)], "share tuple <1,10>");
        assert_eq!(sets[1], vec![ProcId(3)]);
    }

    #[test]
    fn empty_import_set_is_singleton() {
        let src = "process W(x) { import { <x, *>; } -> skip; }";
        let procs = make_procs(
            src,
            &[("W", vec![Value::Int(1)]), ("W", vec![Value::Int(1)])],
        );
        let refs: Vec<&ProcessInstance> = procs.iter().collect();
        // Nothing matches <1, *>, so imports are empty → singletons.
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![9, 9]);
        let sets = consensus_sets(&refs, &ds, &Builtins::new()).unwrap();
        assert_eq!(sets.len(), 2);
    }

    #[test]
    fn hundred_thousand_process_society() {
        // The pairwise hub unions (`full.windows(2)`) build a linear
        // parent chain, and the old recursive `find` then needed one
        // stack frame per process when collecting classes — a stack
        // overflow at this scale.
        let prog = sdl_lang::parse_program("process P() { -> skip; }").unwrap();
        let c = CompiledProgram::compile(&prog).unwrap();
        let def = c.def("P").unwrap().clone();
        let procs: Vec<ProcessInstance> = (0..100_000u64)
            .map(|i| ProcessInstance::new(ProcId(i + 1), def.clone(), vec![]))
            .collect();
        let refs: Vec<&ProcessInstance> = procs.iter().collect();
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![1]);
        let sets = consensus_sets(&refs, &ds, &Builtins::new()).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 100_000);
    }

    #[test]
    fn full_view_bridges_restricted_views() {
        let src = r#"
            process W(x) { import { <x, *>; } -> skip; }
            process F() { -> skip; }
        "#;
        let procs = make_procs(
            src,
            &[
                ("W", vec![Value::Int(1)]),
                ("W", vec![Value::Int(2)]),
                ("F", vec![]),
            ],
        );
        let refs: Vec<&ProcessInstance> = procs.iter().collect();
        let mut ds = Dataspace::new();
        ds.assert_tuple(ProcId::ENV, tuple![1, 10]);
        ds.assert_tuple(ProcId::ENV, tuple![2, 20]);
        let sets = consensus_sets(&refs, &ds, &Builtins::new()).unwrap();
        assert_eq!(sets.len(), 1, "full view overlaps both workers");
    }
}
