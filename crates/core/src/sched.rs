//! The serial reference scheduler.
//!
//! Transactions execute one at a time, so every history is trivially
//! serialisable — this scheduler is the semantic reference against which
//! the parallel-rounds scheduler and the threaded executor are checked.
//! Scheduling is seeded-deterministic: the same program and seed produce
//! the same trace.
//!
//! Blocked delayed/consensus transactions are re-examined only when a
//! commit touches a watch key they subscribe to (conservative wake-up),
//! and the ready queue is FIFO, which together give the paper's weak
//! fairness: an indefinitely-enabled delayed transaction is eventually
//! executed.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sdl_dataspace::{Action, Dataspace, IndexMode, PlanMode, SolveLimits, WatchKey, WatchSet};
use sdl_durability::{RecoveredState, Wal};
use sdl_lang::ast::TxnKind;
use sdl_lang::expr::eval;
use sdl_metrics::{Counter, Gauge, Hist, Metrics};
use sdl_tuple::{ProcId, Tuple, TupleId, Value};

use crate::builtins::Builtins;
use crate::consensus::consensus_sets;
use crate::error::RuntimeError;
use crate::events::{Event, EventLog, EventSink};
use crate::outcome::{Outcome, RunLimits, RunReport};
use crate::process::{Frame, ProcessInstance};
use crate::program::{CompiledBranch, CompiledProgram, CompiledStmt, CompiledTxn};
use crate::trace::{self, ParkOutcome, SpanPhase, TraceRecord, Tracer, Track};
use crate::txn::{self, EvalProbe, Pending, PlanConfig};
use crate::view::EnvCtx;

/// What a single step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StepResult {
    /// Committed, failed-and-skipped, or made control progress; the
    /// process remains runnable (if still alive).
    Progressed,
    /// Blocked on a delayed or consensus transaction.
    Blocked {
        /// The block includes a consensus guard.
        has_consensus: bool,
    },
    /// The process terminated.
    Terminated,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum GuardMode {
    Select,
    Loop,
    Repl,
}

#[derive(Clone, Debug)]
pub(crate) struct BlockInfo {
    pub watch: WatchSet,
    pub has_consensus: bool,
    /// When the process blocked; populated when metrics or the stall
    /// watchdog are enabled.
    pub since: Option<Instant>,
    /// Park start (µs on the tracer clock); 0 when tracing is off.
    pub park_t_us: u64,
}

/// Serial-scheduler state of the stall watchdog (`--stall-ms`).
#[derive(Debug)]
pub(crate) struct StallState {
    /// Parked-beyond-this flags a process as stalled.
    pub threshold: Duration,
    /// Last blocked-set scan, to keep the watchdog off the hot path.
    pub last_scan: Instant,
    /// Processes already flagged (and counted in the gauge).
    pub flagged: HashSet<ProcId>,
    /// Ring of recent commits `(commit id, published keys, description)`
    /// for nearest-miss reporting; newest last.
    pub recent: VecDeque<(u64, WatchSet, String)>,
}

impl StallState {
    pub(crate) fn new(threshold: Duration) -> StallState {
        StallState {
            threshold,
            last_scan: Instant::now(),
            flagged: HashSet::new(),
            recent: VecDeque::new(),
        }
    }

    /// Remembers a commit for nearest-miss reporting (bounded ring).
    pub(crate) fn push_recent(&mut self, commit: u64, keys: WatchSet, desc: String) {
        if self.recent.len() >= 32 {
            self.recent.pop_front();
        }
        self.recent.push_back((commit, keys, desc));
    }
}

/// A one-line description of a committed batch for nearest-miss output:
/// its first asserted tuple plus a remainder count.
pub(crate) fn batch_desc(p: &Pending) -> String {
    match p.asserts.first() {
        Some(t) => {
            let extra = p.asserts.len() - 1 + p.retracts.len();
            if extra > 0 {
                format!("{t} (+{extra} more actions)")
            } else {
                format!("{t}")
            }
        }
        None => format!("{} retracts", p.retracts.len()),
    }
}

/// The `sdl_txn_attempts_total` series for a transaction mode.
pub(crate) fn attempts_counter(kind: TxnKind) -> Counter {
    match kind {
        TxnKind::Immediate => Counter::TxnAttemptsImmediate,
        TxnKind::Delayed => Counter::TxnAttemptsDelayed,
        TxnKind::Consensus => Counter::TxnAttemptsConsensus,
    }
}

/// The `sdl_txn_committed_total` series for a transaction mode.
pub(crate) fn committed_counter(kind: TxnKind) -> Counter {
    match kind {
        TxnKind::Immediate => Counter::TxnCommittedImmediate,
        TxnKind::Delayed => Counter::TxnCommittedDelayed,
        TxnKind::Consensus => Counter::TxnCommittedConsensus,
    }
}

/// The `sdl_txn_failed_total` series for a transaction mode.
pub(crate) fn failed_counter(kind: TxnKind) -> Counter {
    match kind {
        TxnKind::Immediate => Counter::TxnFailedImmediate,
        TxnKind::Delayed => Counter::TxnFailedDelayed,
        TxnKind::Consensus => Counter::TxnFailedConsensus,
    }
}

/// Additional event sinks the runtime forwards to besides the trace log
/// (streaming exporters, incremental statistics).
#[derive(Default)]
pub(crate) struct Sinks(Vec<Box<dyn EventSink>>);

impl fmt::Debug for Sinks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sinks({})", self.0.len())
    }
}

/// Where a blocked process will contribute its consensus transaction.
#[derive(Clone, Debug)]
pub(crate) enum ConsensusSite {
    /// A bare consensus transaction statement.
    PlainTxn,
    /// A consensus guard of a selection/repetition/replication.
    Guard {
        mode: GuardMode,
        rest: Arc<[CompiledStmt]>,
    },
}

/// Configures and creates a [`Runtime`].
#[derive(Debug)]
pub struct RuntimeBuilder {
    program: Arc<CompiledProgram>,
    seed: u64,
    builtins: Builtins,
    trace: bool,
    trace_capacity: Option<usize>,
    tracer: Tracer,
    stall_threshold: Option<Duration>,
    metrics: Metrics,
    sinks: Sinks,
    limits: RunLimits,
    solve_limits: SolveLimits,
    index_mode: IndexMode,
    plan_mode: PlanMode,
    exact_wakes: bool,
    extra_tuples: Vec<Tuple>,
    extra_spawns: Vec<(String, Vec<Value>)>,
    wal: Option<Arc<Wal>>,
    recovered: Option<RecoveredState>,
}

impl RuntimeBuilder {
    /// Sets the scheduler seed (default 0).
    pub fn seed(mut self, seed: u64) -> RuntimeBuilder {
        self.seed = seed;
        self
    }

    /// Replaces the built-in registry (default: [`Builtins::standard`]).
    pub fn builtins(mut self, builtins: Builtins) -> RuntimeBuilder {
        self.builtins = builtins;
        self
    }

    /// Enables event tracing (see [`Runtime::event_log`]).
    pub fn trace(mut self, on: bool) -> RuntimeBuilder {
        self.trace = on;
        self
    }

    /// Enables event tracing into a *bounded* log: the first `capacity`
    /// events are kept, the rest counted in [`EventLog::dropped`].
    pub fn trace_capacity(mut self, capacity: usize) -> RuntimeBuilder {
        self.trace = true;
        self.trace_capacity = Some(capacity);
        self
    }

    /// Attaches a metrics handle; counters and histograms from the
    /// scheduler, dataspace, and solver are recorded into it. The default
    /// ([`Metrics::disabled`]) makes every recording site a single branch.
    pub fn metrics(mut self, metrics: Metrics) -> RuntimeBuilder {
        self.metrics = metrics;
        self
    }

    /// Attaches a causal [`Tracer`]: every transaction attempt gets a
    /// span chain and every wake/conflict a causality edge. The default
    /// ([`Tracer::disabled`]) makes every site a single branch.
    pub fn tracer(mut self, tracer: Tracer) -> RuntimeBuilder {
        self.tracer = tracer;
        self
    }

    /// Arms the stall watchdog: processes parked beyond `threshold` are
    /// flagged in the `sdl_stalled_processes` gauge and annotated in the
    /// trace with their watch keys and nearest-miss commits.
    pub fn stall_threshold(mut self, threshold: Duration) -> RuntimeBuilder {
        self.stall_threshold = Some(threshold);
        self
    }

    /// Adds a streaming event sink (e.g. [`crate::events::JsonlSink`])
    /// that receives every event as it is emitted, independently of the
    /// in-memory trace log. May be called multiple times.
    pub fn event_sink(mut self, sink: Box<dyn EventSink>) -> RuntimeBuilder {
        self.sinks.0.push(sink);
        self
    }

    /// Sets run limits.
    pub fn limits(mut self, limits: RunLimits) -> RuntimeBuilder {
        self.limits = limits;
        self
    }

    /// Sets query-solver limits.
    pub fn solve_limits(mut self, limits: SolveLimits) -> RuntimeBuilder {
        self.solve_limits = limits;
        self
    }

    /// Sets the dataspace index mode (default functor/arity indexing).
    pub fn index_mode(mut self, mode: IndexMode) -> RuntimeBuilder {
        self.index_mode = mode;
        self
    }

    /// Sets the query-plan mode (default selectivity-planned; pass
    /// [`PlanMode::SourceOrder`] for the `--no-plan` ablation baseline).
    pub fn plan_mode(mut self, mode: PlanMode) -> RuntimeBuilder {
        self.plan_mode = mode;
        self
    }

    /// Enables or disables value-level watch keys (default on; pass
    /// `false` for the `--coarse-wakes` ablation baseline, which parks
    /// blocked transactions on functor/arity keys only).
    pub fn exact_wakes(mut self, on: bool) -> RuntimeBuilder {
        self.exact_wakes = on;
        self
    }

    /// Adds an initial tuple programmatically (alongside the program's
    /// `init` block) — how examples seed large workloads.
    pub fn tuple(mut self, t: Tuple) -> RuntimeBuilder {
        self.extra_tuples.push(t);
        self
    }

    /// Adds tuples programmatically.
    pub fn tuples<I: IntoIterator<Item = Tuple>>(mut self, ts: I) -> RuntimeBuilder {
        self.extra_tuples.extend(ts);
        self
    }

    /// Adds an initial process programmatically.
    pub fn spawn(mut self, name: &str, args: Vec<Value>) -> RuntimeBuilder {
        self.extra_spawns.push((name.to_owned(), args));
        self
    }

    /// Attaches a write-ahead log: every commit is appended as one
    /// durable record. On a fresh log, `build` writes a genesis
    /// snapshot capturing the initial tuples so recovery can replay
    /// from an exact base.
    pub fn wal(mut self, wal: Arc<Wal>) -> RuntimeBuilder {
        self.wal = Some(wal);
        self
    }

    /// Seeds the dataspace from recovered state instead of the
    /// program's `init` tuples (the recovered store already contains
    /// them). Tuple ids, owners, and the id-mint cursor are restored
    /// bit-for-bit; the process society restarts fresh. The state must
    /// have been logged single-shard (the serial store is one shard).
    pub fn recover_from(mut self, state: RecoveredState) -> RuntimeBuilder {
        self.recovered = Some(state);
        self
    }

    /// Builds the runtime: asserts initial tuples and spawns the initial
    /// society. With [`RuntimeBuilder::recover_from`], the recovered
    /// store replaces the initial tuples (including any added with
    /// [`RuntimeBuilder::tuple`]).
    ///
    /// # Errors
    ///
    /// Fails if an init tuple expression cannot evaluate, an initial
    /// spawn names an unknown process, or the write-ahead log rejects
    /// the recovered state or genesis snapshot.
    pub fn build(self) -> Result<Runtime, RuntimeError> {
        let mut ds = Dataspace::with_index_mode(self.index_mode);
        ds.set_metrics(self.metrics.clone());
        let recovered = self.recovered;
        let mut rt = Runtime {
            program: self.program,
            ds,
            procs: HashMap::new(),
            ready: VecDeque::new(),
            blocked: BTreeMap::new(),
            wake_index: HashMap::new(),
            next_pid: 1,
            rng: StdRng::seed_from_u64(self.seed),
            builtins: self.builtins,
            trace: if self.trace {
                Some(match self.trace_capacity {
                    Some(cap) => EventLog::with_capacity(cap),
                    None => EventLog::new(),
                })
            } else {
                None
            },
            tracer: self.tracer,
            cur_trace: 0,
            last_commit_id: 0,
            stall: self.stall_threshold.map(StallState::new),
            metrics: self.metrics,
            sinks: self.sinks,
            report: RunReport::new(),
            limits: self.limits,
            solve_limits: self.solve_limits,
            plan_config: PlanConfig {
                mode: self.plan_mode,
                index_mode: self.index_mode,
                exact_wakes: self.exact_wakes,
            },
            wal: self.wal,
        };
        let env = HashMap::new();
        if let Some(state) = recovered {
            // The serial store is a single shard; a log written under
            // more shards cannot reproduce its strided ids here.
            state.check_shards(1).map_err(wal_err)?;
            for (id, t) in &state.tuples {
                rt.ds.insert_instance(*id, t.clone());
            }
            rt.ds.advance_seq_to(state.cursors[0]);
        } else {
            // Program init tuples are ground expressions over built-ins.
            let init_tuples = rt.program.init_tuples.clone();
            for fields in &init_tuples {
                let ctx = EnvCtx {
                    env: &env,
                    vars: None,
                    builtins: &rt.builtins,
                };
                let mut vals = Vec::with_capacity(fields.len());
                for f in fields {
                    vals.push(eval(f, &ctx).map_err(|source| RuntimeError::Eval {
                        source,
                        context: "init tuple".to_owned(),
                    })?);
                }
                rt.ds.assert_tuple(ProcId::ENV, Tuple::new(vals));
            }
            for t in self.extra_tuples {
                rt.ds.assert_tuple(ProcId::ENV, t);
            }
            // Builder-time asserts bypass the commit path, so a fresh
            // log gets them as a genesis snapshot: recovery always has
            // an exact base to replay from.
            if let Some(wal) = &rt.wal {
                if wal.last_appended() == 0 {
                    let tuples: Vec<_> = rt.ds.iter().map(|(id, t)| (id, t.clone())).collect();
                    wal.write_snapshot(&[rt.ds.next_seq()], &tuples)
                        .map_err(wal_err)?;
                }
            }
        }
        let init_spawns = rt.program.init_spawns.clone();
        for (name, args) in &init_spawns {
            let ctx = EnvCtx {
                env: &env,
                vars: None,
                builtins: &rt.builtins,
            };
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, &ctx).map_err(|source| RuntimeError::Eval {
                    source,
                    context: "init spawn argument".to_owned(),
                })?);
            }
            rt.spawn_process(name, vals, ProcId::ENV)?;
        }
        for (name, args) in self.extra_spawns {
            rt.spawn_process(&name, args, ProcId::ENV)?;
        }
        Ok(rt)
    }
}

/// The SDL runtime: dataspace + process society + scheduler.
///
/// # Examples
///
/// ```
/// use sdl_core::{CompiledProgram, Runtime};
///
/// let program = CompiledProgram::from_source(r#"
///     process Greeter() {
///         exists w : <hello, w>! -> <greeting, w>;
///     }
///     init { <hello, world>; spawn Greeter(); }
/// "#).unwrap();
/// let mut rt = Runtime::builder(program).build().unwrap();
/// let report = rt.run().unwrap();
/// assert!(report.outcome.is_completed());
/// assert_eq!(rt.dataspace().len(), 1);
/// ```
#[derive(Debug)]
pub struct Runtime {
    program: Arc<CompiledProgram>,
    pub(crate) ds: Dataspace,
    pub(crate) procs: HashMap<ProcId, ProcessInstance>,
    pub(crate) ready: VecDeque<ProcId>,
    pub(crate) blocked: BTreeMap<ProcId, BlockInfo>,
    /// Reverse subscription index: watch key → blocked processes
    /// subscribed to it. Lets a commit wake only the subscribers of the
    /// keys it published instead of scanning the whole blocked set —
    /// with value-level keys that is O(1) per commit on keyed-park
    /// workloads. Maintained by `block`/`unblock`; `BTreeSet` keeps
    /// wake order (ascending pid) identical to a blocked-set scan.
    wake_index: HashMap<WatchKey, BTreeSet<ProcId>>,
    next_pid: u64,
    pub(crate) rng: StdRng,
    builtins: Builtins,
    trace: Option<EventLog>,
    /// Causal span/edge recorder (disabled by default).
    pub(crate) tracer: Tracer,
    /// Trace id of the attempt currently being evaluated/committed.
    pub(crate) cur_trace: u64,
    /// Commit id of the most recent committed batch (0 = none yet) —
    /// the attribution target for wake edges and rounds conflicts.
    pub(crate) last_commit_id: u64,
    /// Stall watchdog, when armed.
    pub(crate) stall: Option<StallState>,
    pub(crate) metrics: Metrics,
    sinks: Sinks,
    pub(crate) report: RunReport,
    limits: RunLimits,
    solve_limits: SolveLimits,
    plan_config: PlanConfig,
    /// Write-ahead log; when present, every commit appends one record
    /// before the transaction is acknowledged.
    wal: Option<Arc<Wal>>,
}

/// Stringifies a durability error into the runtime's error type.
pub(crate) fn wal_err(e: sdl_durability::WalError) -> RuntimeError {
    RuntimeError::Wal(e.to_string())
}

impl Runtime {
    /// Starts configuring a runtime for `program`.
    pub fn builder(program: CompiledProgram) -> RuntimeBuilder {
        RuntimeBuilder {
            program: Arc::new(program),
            seed: 0,
            builtins: Builtins::standard(),
            trace: false,
            trace_capacity: None,
            tracer: Tracer::disabled(),
            stall_threshold: None,
            metrics: Metrics::disabled(),
            sinks: Sinks::default(),
            limits: RunLimits::default(),
            solve_limits: SolveLimits::default(),
            index_mode: IndexMode::default(),
            plan_mode: PlanMode::default(),
            exact_wakes: true,
            extra_tuples: Vec::new(),
            extra_spawns: Vec::new(),
            wal: None,
            recovered: None,
        }
    }

    /// The current dataspace.
    pub fn dataspace(&self) -> &Dataspace {
        &self.ds
    }

    /// The event log, if tracing was enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.trace.as_ref()
    }

    /// The event log, mutably — lets a driver [`EventLog::clear`] a
    /// bounded log between runs.
    pub fn event_log_mut(&mut self) -> Option<&mut EventLog> {
        self.trace.as_mut()
    }

    /// The metrics handle events are recorded into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Removes and returns the attached streaming sinks (so a driver can
    /// flush them after the run).
    pub fn take_event_sinks(&mut self) -> Vec<Box<dyn EventSink>> {
        std::mem::take(&mut self.sinks.0)
    }

    /// The built-in registry.
    pub fn builtins(&self) -> &Builtins {
        &self.builtins
    }

    /// Explains a quiescent outcome: one line per blocked process with
    /// its definition name and whether it waits on a delayed transaction
    /// or a consensus that never completed — the first thing to read when
    /// a society deadlocks.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdl_core::{CompiledProgram, Runtime};
    ///
    /// let program = CompiledProgram::from_source(
    ///     "process W() { <never> => skip; } init { spawn W(); }",
    /// ).unwrap();
    /// let mut rt = Runtime::builder(program).build().unwrap();
    /// rt.run().unwrap();
    /// let report = rt.blocked_report();
    /// assert!(report.contains("W"));
    /// assert!(report.contains("delayed"));
    /// ```
    pub fn blocked_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pid, info) in &self.blocked {
            let name = self
                .procs
                .get(pid)
                .map(|p| p.def.name.as_str())
                .unwrap_or("?");
            let kind = if info.has_consensus {
                "consensus (community incomplete or query failing)"
            } else {
                "delayed transaction (query never enabled)"
            };
            let keys = info.watch.iter().count();
            let _ = writeln!(
                out,
                "{pid} {name}: blocked on {kind}; watching {keys} key(s)"
            );
        }
        if out.is_empty() {
            out.push_str(
                "no blocked processes
",
            );
        }
        out
    }

    /// Asserts a tuple on behalf of the environment between runs and
    /// wakes any blocked transaction it could enable — the driving-side
    /// API for feeding a quiescent society new work.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdl_core::{CompiledProgram, Runtime};
    /// use sdl_tuple::{tuple, Value};
    ///
    /// let program = CompiledProgram::from_source(
    ///     "process Echo() { loop { exists v : <ping, v>! => <pong, v> } }
    ///      init { spawn Echo(); }",
    /// ).unwrap();
    /// let mut rt = Runtime::builder(program).build().unwrap();
    /// rt.run().unwrap(); // quiesces: nothing to echo yet
    /// rt.add_tuple(tuple![Value::atom("ping"), 1]);
    /// rt.run().unwrap();
    /// assert_eq!(rt.dataspace().len(), 1); // <pong, 1>
    /// ```
    ///
    /// # Panics
    ///
    /// With a write-ahead log attached, panics if the log cannot append
    /// the record — an environment assert that cannot be made durable
    /// has no caller to hand the error to.
    pub fn add_tuple(&mut self, t: Tuple) -> sdl_tuple::TupleId {
        let mut changed = WatchSet::new();
        changed.add_tuple(&t);
        let id = self.ds.assert_tuple(ProcId::ENV, t.clone());
        self.wal_append(Vec::new(), vec![(id, t.clone())])
            .expect("write-ahead log append failed");
        self.emit(Event::TupleAsserted {
            by: ProcId::ENV,
            id,
            tuple: t,
        });
        self.wake(&changed);
        id
    }

    /// Creates a process between runs (the environment-side counterpart
    /// of the `spawn` action).
    ///
    /// # Errors
    ///
    /// Fails if `name` is unknown or the arity does not match.
    pub fn spawn(&mut self, name: &str, args: Vec<Value>) -> Result<ProcId, RuntimeError> {
        self.spawn_process(name, args, ProcId::ENV)
    }

    /// Live processes, in id order.
    pub fn processes(&self) -> Vec<&ProcessInstance> {
        let mut v: Vec<&ProcessInstance> = self.procs.values().collect();
        v.sort_by_key(|p| p.id);
        v
    }

    /// Runs to completion, quiescence, or the step limit, executing
    /// transactions strictly serially.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]s from expression evaluation outside
    /// test positions and from runtime `spawn`s.
    pub fn run(&mut self) -> Result<RunReport, RuntimeError> {
        loop {
            if self.report.attempts >= self.limits.max_attempts {
                self.report.outcome = Outcome::StepLimit;
                break;
            }
            self.stall_scan();
            let Some(pid) = self.ready.pop_front() else {
                if self.try_consensus_any()? {
                    continue;
                }
                self.report.outcome = if self.procs.is_empty() {
                    Outcome::Completed
                } else {
                    Outcome::Quiescent {
                        blocked: {
                            let mut b: Vec<ProcId> = self.procs.keys().copied().collect();
                            b.sort_unstable();
                            b
                        },
                    }
                };
                break;
            };
            if !self.procs.contains_key(&pid) {
                continue; // cancelled while queued
            }
            match self.step(pid)? {
                StepResult::Progressed => {
                    if self.procs.contains_key(&pid) && !self.blocked.contains_key(&pid) {
                        self.ready.push_back(pid);
                    }
                }
                StepResult::Blocked { has_consensus } => {
                    // Fire as soon as a community is complete, even while
                    // unrelated processes are still running. Computing
                    // communities is the expensive part, so pre-filter:
                    // only bother when this process's own consensus query
                    // currently succeeds.
                    if has_consensus && {
                        self.cur_trace = self.tracer.new_trace();
                        self.probe_consensus(pid)?.is_some()
                    } {
                        self.try_consensus_any()?;
                    }
                }
                StepResult::Terminated => {}
            }
        }
        self.report.final_tuples = self.ds.len();
        // Close the park interval of every still-blocked process so
        // traced runs have no dangling parks.
        if self.tracer.enabled() {
            let now = self.tracer.now_us();
            for (pid, info) in &self.blocked {
                self.tracer.record(TraceRecord::Park {
                    pid: *pid,
                    t_us: info.park_t_us,
                    dur_us: now.saturating_sub(info.park_t_us),
                    keys: trace::watch_labels(&info.watch),
                    outcome: ParkOutcome::Drained,
                });
            }
        }
        // Whatever the fsync policy deferred becomes durable before the
        // run is reported back.
        if let Some(wal) = &self.wal {
            wal.sync().map_err(wal_err)?;
        }
        Ok(self.report.clone())
    }

    /// Periodic stall-watchdog pass over the blocked set: flags (once)
    /// every process parked beyond the threshold, moving the
    /// `sdl_stalled_processes` gauge and annotating the trace with the
    /// watch keys waited on and the nearest-miss commits.
    fn stall_scan(&mut self) {
        let Some(stall) = &mut self.stall else {
            return;
        };
        // Scan at half-threshold granularity, not every iteration.
        if stall.last_scan.elapsed() < stall.threshold / 2 {
            return;
        }
        stall.last_scan = Instant::now();
        for (pid, info) in &self.blocked {
            let Some(since) = info.since else { continue };
            let waited = since.elapsed();
            if waited < stall.threshold || !stall.flagged.insert(*pid) {
                continue;
            }
            self.metrics.add_gauge(Gauge::StalledProcesses, 1);
            if self.tracer.enabled() {
                self.tracer.record(TraceRecord::Stall {
                    pid: *pid,
                    t_us: self.tracer.now_us(),
                    waited_us: waited.as_micros() as u64,
                    keys: trace::watch_labels(&info.watch),
                    near_misses: trace::near_misses(&info.watch, stall.recent.make_contiguous()),
                });
            }
        }
    }

    // ---------------- stepping ----------------

    pub(crate) fn step(&mut self, pid: ProcId) -> Result<StepResult, RuntimeError> {
        loop {
            let Some(proc) = self.procs.get(&pid) else {
                return Ok(StepResult::Terminated);
            };
            let top = proc.frames.last().cloned();
            match top {
                None => {
                    self.terminate(pid, false);
                    return Ok(StepResult::Terminated);
                }
                Some(Frame::Seq { stmts, idx }) => {
                    if idx >= stmts.len() {
                        self.procs
                            .get_mut(&pid)
                            .expect("checked above")
                            .frames
                            .pop();
                        continue;
                    }
                    match stmts[idx].clone() {
                        CompiledStmt::Txn(t) => return self.step_txn(pid, &t),
                        CompiledStmt::Select(branches) => {
                            return self.attempt_guards(pid, &branches, GuardMode::Select)
                        }
                        CompiledStmt::Repeat(branches) => {
                            self.advance_seq(pid);
                            self.procs
                                .get_mut(&pid)
                                .expect("checked above")
                                .frames
                                .push(Frame::Loop { branches });
                            continue;
                        }
                        CompiledStmt::Replicate(branches) => {
                            self.advance_seq(pid);
                            self.procs
                                .get_mut(&pid)
                                .expect("checked above")
                                .frames
                                .push(Frame::Repl {
                                    branches,
                                    active: 0,
                                });
                            continue;
                        }
                    }
                }
                Some(Frame::Loop { branches }) => {
                    return self.attempt_guards(pid, &branches, GuardMode::Loop)
                }
                Some(Frame::Repl { branches, .. }) => {
                    return self.attempt_guards(pid, &branches, GuardMode::Repl)
                }
            }
        }
    }

    fn step_txn(&mut self, pid: ProcId, t: &Arc<CompiledTxn>) -> Result<StepResult, RuntimeError> {
        if t.kind == TxnKind::Consensus {
            // A bare consensus transaction blocks until its community
            // fires it.
            let watch = self.txn_watch(pid, t);
            return Ok(self.block(pid, watch, true));
        }
        self.report.attempts += 1;
        self.metrics.inc(attempts_counter(t.kind));
        self.cur_trace = self.tracer.new_trace();
        match self.evaluate_for(pid, t, None)? {
            Some(p) => {
                self.advance_seq(pid);
                let changed = self.commit_single(pid, &p)?;
                self.metrics.inc(committed_counter(t.kind));
                self.emit(Event::TxnCommitted {
                    by: pid,
                    kind: t.kind,
                });
                self.wake(&changed);
                self.apply_control(pid, &p)?;
                Ok(StepResult::Progressed)
            }
            None => {
                self.metrics.inc(failed_counter(t.kind));
                match t.kind {
                    TxnKind::Immediate => {
                        // A failed immediate transaction "has no effect on
                        // the dataspace"; as a statement it acts as skip.
                        self.emit(Event::TxnFailed { by: pid });
                        self.advance_seq(pid);
                        Ok(StepResult::Progressed)
                    }
                    TxnKind::Delayed => {
                        let watch = self.txn_watch(pid, t);
                        Ok(self.block(pid, watch, false))
                    }
                    TxnKind::Consensus => unreachable!("handled above"),
                }
            }
        }
    }

    pub(crate) fn attempt_guards(
        &mut self,
        pid: ProcId,
        branches: &Arc<[CompiledBranch]>,
        mode: GuardMode,
    ) -> Result<StepResult, RuntimeError> {
        let mut order: Vec<usize> = (0..branches.len()).collect();
        order.shuffle(&mut self.rng);
        let mut delayed_present = false;
        let mut consensus_present = false;

        for &i in &order {
            let guard = branches[i].guard.clone();
            match guard.kind {
                TxnKind::Consensus => {
                    consensus_present = true;
                    continue;
                }
                TxnKind::Delayed => delayed_present = true,
                TxnKind::Immediate => {}
            }
            self.report.attempts += 1;
            self.metrics.inc(attempts_counter(guard.kind));
            self.cur_trace = self.tracer.new_trace();
            if let Some(p) = self.evaluate_for(pid, &guard, None)? {
                if mode == GuardMode::Select {
                    self.advance_seq(pid);
                }
                let changed = self.commit_single(pid, &p)?;
                self.metrics.inc(committed_counter(guard.kind));
                self.emit(Event::TxnCommitted {
                    by: pid,
                    kind: guard.kind,
                });
                self.wake(&changed);
                self.enter_branch(pid, &p, branches[i].rest.clone(), mode)?;
                return Ok(StepResult::Progressed);
            }
            self.metrics.inc(failed_counter(guard.kind));
        }

        // No guard committed.
        let repl_active = {
            let proc = &self.procs[&pid];
            match proc.frames.last() {
                Some(Frame::Repl { active, .. }) => *active,
                _ => 0,
            }
        };
        let must_wait =
            delayed_present || consensus_present || (mode == GuardMode::Repl && repl_active > 0);
        if must_wait {
            let watch = self.guards_watch(pid, branches);
            return Ok(self.block(pid, watch, consensus_present));
        }
        match mode {
            GuardMode::Select => {
                // "The selection is modeled as a 'skip' statement."
                self.advance_seq(pid);
            }
            GuardMode::Loop | GuardMode::Repl => {
                self.procs
                    .get_mut(&pid)
                    .expect("process is live")
                    .frames
                    .pop();
            }
        }
        Ok(StepResult::Progressed)
    }

    /// Applies a committed guard's control effects and enters the branch
    /// body according to the construct.
    pub(crate) fn enter_branch(
        &mut self,
        pid: ProcId,
        p: &Pending,
        rest: Arc<[CompiledStmt]>,
        mode: GuardMode,
    ) -> Result<(), RuntimeError> {
        if mode == GuardMode::Repl {
            // `let`s address the copy, not the parent.
            for (name, args) in &p.spawns {
                self.spawn_process(name, args.clone(), pid)?;
            }
            if p.abort {
                self.cancel_helpers(pid);
                self.terminate(pid, true);
                return Ok(());
            }
            if p.exit {
                self.exit_process(pid);
                return Ok(());
            }
            if !rest.is_empty() {
                let helper_id = self.alloc_pid();
                let parent = self.procs.get(&pid).expect("process is live");
                let mut env = parent.env.clone();
                for (name, v) in &p.lets {
                    env.insert(name.clone(), v.clone());
                }
                let helper = ProcessInstance::body_helper(helper_id, parent, rest, env);
                if let Some(Frame::Repl { active, .. }) = self
                    .procs
                    .get_mut(&pid)
                    .expect("process is live")
                    .frames
                    .last_mut()
                {
                    *active += 1;
                }
                self.procs.insert(helper_id, helper);
                self.ready.push_back(helper_id);
            }
            return Ok(());
        }
        let terminated = self.apply_control(pid, p)?;
        if !terminated && !p.exit && !rest.is_empty() {
            self.procs
                .get_mut(&pid)
                .expect("process is live")
                .frames
                .push(Frame::Seq {
                    stmts: rest,
                    idx: 0,
                });
        }
        Ok(())
    }

    // ---------------- evaluation & commit ----------------

    /// Evaluates `t` for `pid`, building the process window over
    /// `source_ds` (defaults to the live dataspace — the rounds scheduler
    /// passes the round snapshot).
    pub(crate) fn evaluate_for(
        &self,
        pid: ProcId,
        t: &CompiledTxn,
        source_ds: Option<&Dataspace>,
    ) -> Result<Option<Pending>, RuntimeError> {
        let proc = &self.procs[&pid];
        let ds = source_ds.unwrap_or(&self.ds);
        let timer = self.metrics.start_timer();
        let span = self.tracer.begin();
        let mut probe = span.map(|_| EvalProbe::new());
        let source = proc.def.view.window(ds, &proc.env, &self.builtins)?;
        let result = txn::evaluate_probed(
            t,
            &source,
            &proc.env,
            &self.builtins,
            self.solve_limits,
            self.plan_config,
            probe.as_mut(),
        );
        self.metrics.observe_timer(Hist::QueryEvalSeconds, timer);
        if let (Some(t0), Some(pr)) = (span, &probe) {
            // Plan-cache lookup nests inside the eval span.
            if let Some((off, dur)) = pr.plan_us {
                self.tracer.record(TraceRecord::Span {
                    trace: self.cur_trace,
                    pid,
                    track: Track::current(),
                    phase: SpanPhase::Plan,
                    t_us: t0 + off,
                    dur_us: dur,
                });
            }
        }
        self.tracer.span(span, self.cur_trace, pid, SpanPhase::Eval);
        result
    }

    /// The watch subscription for a transaction about to park.
    ///
    /// Probes the live store so [`txn::watch_set_on`] can narrow the
    /// subscription to a single provably-empty atom. Sound here because
    /// the serial and rounds schedulers run park and probe on one thread
    /// against the same store (no commit can interleave), the
    /// subscription is recomputed on every re-park, and a process view
    /// only *filters* the store (an atom empty store-wide is empty in
    /// every window). The threaded executor keeps the full per-atom
    /// subscription — its park/commit-epoch protocol installs
    /// subscriptions concurrently with commits.
    pub(crate) fn txn_watch(&self, pid: ProcId, t: &CompiledTxn) -> WatchSet {
        let proc = &self.procs[&pid];
        txn::watch_set_on(
            t,
            &proc.env,
            &self.builtins,
            self.plan_config.exact_wakes,
            Some(&self.ds),
        )
    }

    fn guards_watch(&self, pid: ProcId, branches: &Arc<[CompiledBranch]>) -> WatchSet {
        let mut w = WatchSet::new();
        for b in branches.iter() {
            w.extend(&self.txn_watch(pid, &b.guard));
        }
        w
    }

    /// Applies a single pending commit's dataspace effects (export
    /// filtering against the pre-state, then retracts, then asserts) and
    /// returns the changed watch keys.
    ///
    /// The whole commit goes through [`Dataspace::apply_batch`], so index
    /// maintenance is grouped per index entry and the store version bumps
    /// once — a high-fanout `forall` commit touches each `(functor,
    /// arity)` bucket a single time instead of once per tuple.
    pub(crate) fn commit_single(
        &mut self,
        pid: ProcId,
        p: &Pending,
    ) -> Result<WatchSet, RuntimeError> {
        let (def, env) = {
            let proc = &self.procs[&pid];
            (proc.def.clone(), proc.env.clone())
        };
        let allowed: Vec<bool> = p
            .asserts
            .iter()
            .map(|t| def.view.exports(t, &self.ds, &env, &self.builtins))
            .collect();
        let mut actions: Vec<Action> = Vec::with_capacity(p.retracts.len() + p.asserts.len());
        actions.extend(p.retracts.iter().map(|id| Action::Retract(*id)));
        actions.extend(
            p.asserts
                .iter()
                .zip(&allowed)
                .filter(|(_, ok)| **ok)
                .map(|(t, _)| Action::Assert(pid, t.clone())),
        );
        let apply_timer = self.metrics.start_timer();
        let commit_span = self.tracer.begin();
        let mut changed = WatchSet::new();
        let out = self.ds.apply_batch(&actions, &mut changed);
        let logging = self.wal.is_some();
        let mut wal_retracts = Vec::new();
        let mut wal_asserts = Vec::new();
        for (id, t) in out.retracted {
            if logging {
                wal_retracts.push(id);
            }
            self.emit(Event::TupleRetracted {
                by: pid,
                id,
                tuple: t,
            });
        }
        let mut ids = out.asserted.into_iter();
        for (t, ok) in p.asserts.iter().zip(&allowed) {
            if *ok {
                let id = ids.next().expect("one id per applied assert");
                if logging {
                    wal_asserts.push((id, t.clone()));
                }
                self.emit(Event::TupleAsserted {
                    by: pid,
                    id,
                    tuple: t.clone(),
                });
            } else {
                self.metrics.inc(Counter::ExportDropped);
                self.emit(Event::ExportDropped {
                    by: pid,
                    tuple: t.clone(),
                });
            }
        }
        self.wal_append(wal_retracts, wal_asserts)?;
        self.metrics
            .observe_timer(Hist::CommitApplySeconds, apply_timer);
        let commit_id = self.tracer.new_commit();
        if commit_id != 0 {
            self.last_commit_id = commit_id;
            let now = self.tracer.now_us();
            let t0 = commit_span.unwrap_or(now);
            self.tracer.record(TraceRecord::Commit {
                trace: self.cur_trace,
                pid,
                track: Track::current(),
                commit: commit_id,
                t_us: t0,
                dur_us: now.saturating_sub(t0),
                keys: trace::watch_labels(&changed),
                shards: Vec::new(),
            });
            if let Some(stall) = &mut self.stall {
                stall.push_recent(commit_id, changed.clone(), batch_desc(p));
            }
        }
        if let Some(proc) = self.procs.get_mut(&pid) {
            if proc.woken {
                proc.woken = false;
                self.metrics.inc(Counter::WakeProgress);
            }
        }
        self.report.commits += 1;
        Ok(changed)
    }

    /// Appends one committed batch to the write-ahead log (if any),
    /// makes it durable per the fsync policy, and writes a snapshot
    /// when one is due. Serially, the store after this commit *is* the
    /// state the snapshot must capture, so this is the one safe place.
    fn wal_append(
        &mut self,
        retracts: Vec<TupleId>,
        asserts: Vec<(TupleId, Tuple)>,
    ) -> Result<(), RuntimeError> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let commit = wal.append(&retracts, &asserts).map_err(wal_err)?;
        wal.ensure_durable(commit).map_err(wal_err)?;
        if wal.snapshot_due() {
            let tuples: Vec<_> = self.ds.iter().map(|(id, t)| (id, t.clone())).collect();
            wal.write_snapshot(&[self.ds.next_seq()], &tuples)
                .map_err(wal_err)?;
        }
        Ok(())
    }

    /// Applies `let`s, `spawn`s, `exit`, `abort`. Returns true if the
    /// process terminated.
    pub(crate) fn apply_control(&mut self, pid: ProcId, p: &Pending) -> Result<bool, RuntimeError> {
        if let Some(proc) = self.procs.get_mut(&pid) {
            for (name, v) in &p.lets {
                proc.env.insert(name.clone(), v.clone());
            }
        }
        for (name, args) in &p.spawns {
            self.spawn_process(name, args.clone(), pid)?;
        }
        if p.abort {
            self.cancel_helpers(pid);
            self.terminate(pid, true);
            return Ok(true);
        }
        if p.exit {
            return Ok(self.exit_process(pid));
        }
        Ok(false)
    }

    /// Applies `exit`: unwind to the nearest loop/replication; terminate
    /// the process if there is none. Returns true if terminated.
    fn exit_process(&mut self, pid: ProcId) -> bool {
        let unwound = self
            .procs
            .get_mut(&pid)
            .expect("process is live")
            .unwind_exit();
        match unwound {
            None => {
                self.terminate(pid, false);
                true
            }
            Some(active_helpers) => {
                if active_helpers > 0 {
                    self.cancel_helpers(pid);
                }
                false
            }
        }
    }

    // ---------------- society management ----------------

    fn alloc_pid(&mut self) -> ProcId {
        let id = ProcId(self.next_pid);
        self.next_pid += 1;
        id
    }

    /// Creates a process from a definition name.
    pub(crate) fn spawn_process(
        &mut self,
        name: &str,
        args: Vec<Value>,
        by: ProcId,
    ) -> Result<ProcId, RuntimeError> {
        let def = self
            .program
            .def(name)
            .ok_or_else(|| RuntimeError::UnknownProcess(name.to_owned()))?
            .clone();
        if def.params.len() != args.len() {
            return Err(RuntimeError::SpawnArity {
                process: name.to_owned(),
                expected: def.params.len(),
                found: args.len(),
            });
        }
        let id = self.alloc_pid();
        self.metrics.inc(Counter::ProcessesSpawned);
        self.emit(Event::ProcessCreated {
            id,
            name: name.to_owned(),
            args: args.clone(),
            by,
        });
        self.procs.insert(id, ProcessInstance::new(id, def, args));
        self.ready.push_back(id);
        self.report.processes_created += 1;
        Ok(id)
    }

    pub(crate) fn terminate(&mut self, pid: ProcId, aborted: bool) {
        let Some(proc) = self.procs.remove(&pid) else {
            return;
        };
        self.unblock(pid);
        self.emit(Event::ProcessTerminated { id: pid, aborted });
        // Notify a replication parent.
        if let Some(parent_id) = proc.parent {
            if let Some(parent) = self.procs.get_mut(&parent_id) {
                for frame in parent.frames.iter_mut().rev() {
                    if let Frame::Repl { active, .. } = frame {
                        *active = active.saturating_sub(1);
                        break;
                    }
                }
            }
            self.wake_pid(parent_id);
        }
    }

    /// Terminates (transitively) all replication body helpers of `pid`.
    fn cancel_helpers(&mut self, pid: ProcId) {
        loop {
            let victim = self
                .procs
                .values()
                .find(|p| p.parent == Some(pid))
                .map(|p| p.id);
            match victim {
                Some(v) => {
                    self.cancel_helpers(v);
                    // Remove directly — no parent notification (the Repl
                    // frame is being dismantled).
                    self.procs.remove(&v);
                    self.unblock(v);
                    self.emit(Event::ProcessTerminated {
                        id: v,
                        aborted: true,
                    });
                }
                None => break,
            }
        }
    }

    // ---------------- blocking & waking ----------------

    pub(crate) fn block(
        &mut self,
        pid: ProcId,
        watch: WatchSet,
        has_consensus: bool,
    ) -> StepResult {
        self.metrics.inc(Counter::ProcessesBlocked);
        // A process that re-blocks without having committed since its
        // last wakeup was woken spuriously (the key matched, the query
        // still failed).
        if let Some(proc) = self.procs.get_mut(&pid) {
            if proc.woken {
                proc.woken = false;
                self.metrics.inc(Counter::WakeSpurious);
            }
        }
        self.emit(Event::ProcessBlocked {
            id: pid,
            consensus: has_consensus,
        });
        if let Some(old) = self.blocked.remove(&pid) {
            self.unindex_watch(pid, &old.watch);
        } else {
            self.metrics.add_gauge(Gauge::BlockedQueueDepth, 1);
        }
        for key in watch.iter() {
            self.wake_index.entry(*key).or_default().insert(pid);
        }
        self.blocked.insert(
            pid,
            BlockInfo {
                watch,
                has_consensus,
                since: self
                    .metrics
                    .start_timer()
                    .or_else(|| self.stall.as_ref().map(|_| Instant::now())),
                park_t_us: self.tracer.now_us(),
            },
        );
        StepResult::Blocked { has_consensus }
    }

    fn unindex_watch(&mut self, pid: ProcId, watch: &WatchSet) {
        for key in watch.iter() {
            if let Some(subs) = self.wake_index.get_mut(key) {
                subs.remove(&pid);
                if subs.is_empty() {
                    self.wake_index.remove(key);
                }
            }
        }
    }

    /// Removes `pid` from the blocked set, unsubscribing its watch keys
    /// and settling the queue-depth gauge. All unparking goes through
    /// here so the wake index never holds stale subscriptions.
    pub(crate) fn unblock(&mut self, pid: ProcId) -> Option<BlockInfo> {
        let info = self.blocked.remove(&pid)?;
        self.unindex_watch(pid, &info.watch);
        self.metrics.add_gauge(Gauge::BlockedQueueDepth, -1);
        if let Some(stall) = &mut self.stall {
            if stall.flagged.remove(&pid) {
                self.metrics.add_gauge(Gauge::StalledProcesses, -1);
            }
        }
        if self.tracer.enabled() {
            let now = self.tracer.now_us();
            self.tracer.record(TraceRecord::Park {
                pid,
                t_us: info.park_t_us,
                dur_us: now.saturating_sub(info.park_t_us),
                keys: trace::watch_labels(&info.watch),
                outcome: ParkOutcome::Woken,
            });
        }
        Some(info)
    }

    pub(crate) fn wake(&mut self, changed: &WatchSet) {
        if changed.is_empty() {
            return;
        }
        // Union of subscribers over the published keys — exactly the
        // blocked processes whose watch set intersects `changed`, in
        // ascending pid order (matching the old full scan). Each pid
        // remembers the first key that matched it, so the trace can say
        // *which* subscription the commit satisfied.
        let mut woken: BTreeMap<ProcId, WatchKey> = BTreeMap::new();
        for key in changed.iter() {
            if let Some(subs) = self.wake_index.get(key) {
                for pid in subs {
                    woken.entry(*pid).or_insert(*key);
                }
            }
        }
        for (pid, key) in woken {
            if let Some(info) = self.unblock(pid) {
                self.metrics.inc(Counter::WakeupCommit);
                self.metrics.observe_timer(Hist::BlockedSeconds, info.since);
                if self.tracer.enabled() {
                    self.tracer.record(TraceRecord::Wake {
                        pid,
                        commit: self.last_commit_id,
                        key: key.label(),
                        t_us: self.tracer.now_us(),
                    });
                }
                if let Some(proc) = self.procs.get_mut(&pid) {
                    proc.woken = true;
                }
            }
            self.ready.push_back(pid);
        }
    }

    /// Records a validation-conflict edge: the current attempt aborted
    /// because of the most recently committed batch.
    pub(crate) fn trace_conflict(&self, pid: ProcId) {
        if self.tracer.enabled() {
            self.tracer.record(TraceRecord::Conflict {
                trace: self.cur_trace,
                pid,
                track: Track::current(),
                against: self.last_commit_id,
                t_us: self.tracer.now_us(),
            });
        }
    }

    fn wake_pid(&mut self, pid: ProcId) {
        if let Some(info) = self.unblock(pid) {
            self.metrics.inc(Counter::WakeupCommit);
            self.metrics.observe_timer(Hist::BlockedSeconds, info.since);
            if self.tracer.enabled() {
                // A replication parent woken by a child's exit, not by a
                // tuple commit; the attribution points at the last commit
                // (usually the child's final action).
                self.tracer.record(TraceRecord::Wake {
                    pid,
                    commit: self.last_commit_id,
                    key: "child-exit".to_string(),
                    t_us: self.tracer.now_us(),
                });
            }
            if let Some(proc) = self.procs.get_mut(&pid) {
                proc.woken = true;
            }
            self.ready.push_back(pid);
        }
    }

    // ---------------- consensus ----------------

    /// Attempts to fire one complete consensus community; true if fired.
    pub(crate) fn try_consensus_any(&mut self) -> Result<bool, RuntimeError> {
        let procs: Vec<&ProcessInstance> = self.procs.values().collect();
        if procs.is_empty() {
            return Ok(false);
        }
        let sets = consensus_sets(&procs, &self.ds, &self.builtins)?;
        for set in sets {
            // Every member must be blocked with a consensus guard.
            if !set
                .iter()
                .all(|pid| self.blocked.get(pid).is_some_and(|info| info.has_consensus))
            {
                continue;
            }
            // Probe every member's contribution against the same D.
            let mut contributions = Vec::with_capacity(set.len());
            let mut complete = true;
            for pid in &set {
                self.cur_trace = self.tracer.new_trace();
                match self.probe_consensus(*pid)? {
                    Some((site, pending)) => contributions.push((*pid, site, pending)),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                self.fire_consensus(contributions)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Finds the blocked process's first enabled consensus transaction at
    /// its current position, evaluated against the current dataspace.
    fn probe_consensus(
        &self,
        pid: ProcId,
    ) -> Result<Option<(ConsensusSite, Pending)>, RuntimeError> {
        let proc = &self.procs[&pid];
        match proc.frames.last() {
            Some(Frame::Seq { stmts, idx }) => match stmts.get(*idx) {
                Some(CompiledStmt::Txn(t)) if t.kind == TxnKind::Consensus => {
                    self.metrics.inc(Counter::TxnAttemptsConsensus);
                    Ok(self
                        .evaluate_for(pid, t, None)?
                        .map(|p| (ConsensusSite::PlainTxn, p)))
                }
                Some(CompiledStmt::Select(branches)) => {
                    self.probe_guards(pid, branches, GuardMode::Select)
                }
                _ => Ok(None),
            },
            Some(Frame::Loop { branches }) => self.probe_guards(pid, branches, GuardMode::Loop),
            Some(Frame::Repl { branches, .. }) => self.probe_guards(pid, branches, GuardMode::Repl),
            None => Ok(None),
        }
    }

    fn probe_guards(
        &self,
        pid: ProcId,
        branches: &Arc<[CompiledBranch]>,
        mode: GuardMode,
    ) -> Result<Option<(ConsensusSite, Pending)>, RuntimeError> {
        for b in branches.iter() {
            if b.guard.kind != TxnKind::Consensus {
                continue;
            }
            self.metrics.inc(Counter::TxnAttemptsConsensus);
            if let Some(p) = self.evaluate_for(pid, &b.guard, None)? {
                return Ok(Some((
                    ConsensusSite::Guard {
                        mode,
                        rest: b.rest.clone(),
                    },
                    p,
                )));
            }
        }
        Ok(None)
    }

    /// Commits a complete community's contributions as one composite
    /// transaction: all retractions first, then all assertions (export
    /// sets evaluated against the pre-composite configuration), then each
    /// participant's local actions and control advance.
    fn fire_consensus(
        &mut self,
        contributions: Vec<(ProcId, ConsensusSite, Pending)>,
    ) -> Result<(), RuntimeError> {
        let participants: Vec<ProcId> = contributions.iter().map(|(p, _, _)| *p).collect();
        self.emit(Event::ConsensusReached {
            participants: participants.clone(),
        });
        self.report.consensus_rounds += 1;
        self.metrics.inc(Counter::ConsensusRounds);

        // Export allowance against the pre-composite state.
        let mut allowed: Vec<Vec<bool>> = Vec::with_capacity(contributions.len());
        for (pid, _, p) in &contributions {
            let proc = &self.procs[pid];
            allowed.push(
                p.asserts
                    .iter()
                    .map(|t| {
                        proc.def
                            .view
                            .exports(t, &self.ds, &proc.env, &self.builtins)
                    })
                    .collect(),
            );
        }

        // Composite: retraction set-union, then additions — applied as
        // one batch so the whole community's effects share a single
        // index-maintenance pass and version bump.
        let mut retract_by = std::collections::HashMap::new();
        let mut actions: Vec<Action> = Vec::new();
        for (pid, _, p) in &contributions {
            for id in &p.retracts {
                if let std::collections::hash_map::Entry::Vacant(e) = retract_by.entry(*id) {
                    e.insert(*pid);
                    actions.push(Action::Retract(*id));
                }
            }
        }
        for ((pid, _, p), allow) in contributions.iter().zip(&allowed) {
            actions.extend(
                p.asserts
                    .iter()
                    .zip(allow)
                    .filter(|(_, ok)| **ok)
                    .map(|(t, _)| Action::Assert(*pid, t.clone())),
            );
        }
        let apply_timer = self.metrics.start_timer();
        let commit_span = self.tracer.begin();
        let mut changed = WatchSet::new();
        let out = self.ds.apply_batch(&actions, &mut changed);
        let logging = self.wal.is_some();
        let mut wal_retracts = Vec::new();
        let mut wal_asserts = Vec::new();
        for (id, t) in out.retracted {
            if logging {
                wal_retracts.push(id);
            }
            let by = retract_by[&id];
            self.emit(Event::TupleRetracted { by, id, tuple: t });
        }
        let mut ids = out.asserted.into_iter();
        for ((pid, _, p), allow) in contributions.iter().zip(&allowed) {
            for (t, ok) in p.asserts.iter().zip(allow) {
                if *ok {
                    let id = ids.next().expect("one id per applied assert");
                    if logging {
                        wal_asserts.push((id, t.clone()));
                    }
                    self.emit(Event::TupleAsserted {
                        by: *pid,
                        id,
                        tuple: t.clone(),
                    });
                } else {
                    self.metrics.inc(Counter::ExportDropped);
                    self.emit(Event::ExportDropped {
                        by: *pid,
                        tuple: t.clone(),
                    });
                }
            }
            self.report.commits += 1;
            self.metrics.inc(Counter::TxnCommittedConsensus);
            self.emit(Event::TxnCommitted {
                by: *pid,
                kind: TxnKind::Consensus,
            });
        }
        // The composite is one atomic transaction, so it is one WAL
        // record: recovery replays the whole community or none of it.
        self.wal_append(wal_retracts, wal_asserts)?;
        self.metrics
            .observe_timer(Hist::CommitApplySeconds, apply_timer);
        let commit_id = self.tracer.new_commit();
        if commit_id != 0 {
            self.last_commit_id = commit_id;
            let now = self.tracer.now_us();
            let t0 = commit_span.unwrap_or(now);
            self.tracer.record(TraceRecord::Commit {
                trace: self.cur_trace,
                pid: participants[0],
                track: Track::current(),
                commit: commit_id,
                t_us: t0,
                dur_us: now.saturating_sub(t0),
                keys: trace::watch_labels(&changed),
                shards: Vec::new(),
            });
            if let Some(stall) = &mut self.stall {
                stall.push_recent(
                    commit_id,
                    changed.clone(),
                    format!("consensus of {} processes", participants.len()),
                );
            }
        }

        // Per-participant control advance. Every participant's wake ends
        // in this commit, so it counts as progress.
        for (pid, site, p) in &contributions {
            if let Some(info) = self.unblock(*pid) {
                self.metrics.inc(Counter::WakeupConsensus);
                self.metrics.inc(Counter::WakeProgress);
                self.metrics.observe_timer(Hist::BlockedSeconds, info.since);
                if self.tracer.enabled() {
                    self.tracer.record(TraceRecord::Wake {
                        pid: *pid,
                        commit: commit_id,
                        key: "consensus".to_string(),
                        t_us: self.tracer.now_us(),
                    });
                }
            }
            if let Some(proc) = self.procs.get_mut(pid) {
                proc.woken = false;
            }
            match site {
                ConsensusSite::PlainTxn => {
                    self.advance_seq(*pid);
                    let terminated = self.apply_control(*pid, p)?;
                    if !terminated {
                        self.ready.push_back(*pid);
                    }
                }
                ConsensusSite::Guard { mode, rest } => {
                    if *mode == GuardMode::Select {
                        self.advance_seq(*pid);
                    }
                    self.enter_branch(*pid, p, rest.clone(), *mode)?;
                    if self.procs.contains_key(pid) && !self.blocked.contains_key(pid) {
                        self.ready.push_back(*pid);
                    }
                }
            }
        }
        self.wake(&changed);
        Ok(())
    }

    // ---------------- small helpers ----------------

    pub(crate) fn advance_seq(&mut self, pid: ProcId) {
        if let Some(proc) = self.procs.get_mut(&pid) {
            if let Some(Frame::Seq { idx, .. }) = proc.frames.last_mut() {
                *idx += 1;
            }
        }
    }

    pub(crate) fn limits_max_attempts(&self) -> u64 {
        self.limits.max_attempts
    }

    pub(crate) fn emit(&mut self, event: Event) {
        let step = self.report.attempts;
        match (&mut self.sinks.0[..], &mut self.trace) {
            ([], None) => {}
            ([], Some(log)) => {
                if !log.push(step, event) {
                    self.metrics.inc(Counter::EventsDropped);
                }
            }
            (sinks, trace) => {
                for sink in sinks.iter_mut() {
                    sink.record(step, event.clone());
                }
                if let Some(log) = trace {
                    if !log.push(step, event) {
                        self.metrics.inc(Counter::EventsDropped);
                    }
                }
            }
        }
    }
}
