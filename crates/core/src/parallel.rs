//! Multithreaded optimistic executor.
//!
//! Real-parallelism counterpart to [`Runtime::run_rounds`]'s logical
//! parallelism: worker threads execute processes concurrently against a
//! shared dataspace. A transaction **evaluates** under a read lock
//! (windows, joins, tests — the expensive part), then **commits** under
//! the write lock after re-validating its read/retract/negation evidence;
//! a failed validation retries. This is classic optimistic concurrency
//! control, sound because [`crate::txn::Pending::validate`] re-establishes
//! exactly the facts the evaluation relied on.
//!
//! ## Supported fragment
//!
//! Immediate and delayed transactions, selection, repetition, `let`,
//! `spawn`, `exit`, `abort`, and views. **Consensus transactions and
//! replication are not supported** (they need global coordination the
//! serial and rounds schedulers provide); programs using them are
//! rejected with [`RuntimeError::Unsupported`]. This fragment covers the
//! paper's worker-model programs, which is what the scaling experiment
//! (E5) measures.
//!
//! [`Runtime::run_rounds`]: crate::Runtime::run_rounds

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sdl_dataspace::{Dataspace, PlanMode, SolveLimits, WatchSet};
use sdl_lang::ast::TxnKind;
use sdl_lang::expr::eval;
use sdl_metrics::{Counter, Hist, Metrics};
use sdl_tuple::{ProcId, Tuple, Value};

use crate::builtins::Builtins;
use crate::error::RuntimeError;
use crate::outcome::Outcome;
use crate::process::{Frame, ProcessInstance};
use crate::program::{CompiledBranch, CompiledProgram, CompiledStmt, CompiledTxn};
use crate::sched::{attempts_counter, committed_counter, failed_counter};
use crate::txn::{self, Pending, PlanConfig};
use crate::view::EnvCtx;

/// Outcome and statistics of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Committed transactions.
    pub commits: u64,
    /// Evaluation attempts.
    pub attempts: u64,
    /// Commits that failed validation and retried.
    pub conflicts: u64,
    /// Tuples left in the dataspace.
    pub final_tuples: usize,
}

/// Configures and creates a [`ParallelRuntime`].
#[derive(Debug)]
pub struct ParallelBuilder {
    program: Arc<CompiledProgram>,
    threads: usize,
    seed: u64,
    builtins: Builtins,
    max_attempts: u64,
    plan_mode: PlanMode,
    tuples: Vec<Tuple>,
    spawns: Vec<(String, Vec<Value>)>,
    metrics: Metrics,
}

impl ParallelBuilder {
    /// Number of worker threads (default: available parallelism).
    pub fn threads(mut self, n: usize) -> ParallelBuilder {
        self.threads = n.max(1);
        self
    }

    /// Scheduler seed.
    pub fn seed(mut self, seed: u64) -> ParallelBuilder {
        self.seed = seed;
        self
    }

    /// Replaces the built-in registry.
    pub fn builtins(mut self, builtins: Builtins) -> ParallelBuilder {
        self.builtins = builtins;
        self
    }

    /// Caps evaluation attempts.
    pub fn max_attempts(mut self, n: u64) -> ParallelBuilder {
        self.max_attempts = n;
        self
    }

    /// Sets the query-plan mode (default selectivity-planned; pass
    /// [`PlanMode::SourceOrder`] for the ablation baseline).
    pub fn plan_mode(mut self, mode: PlanMode) -> ParallelBuilder {
        self.plan_mode = mode;
        self
    }

    /// Adds an initial tuple.
    pub fn tuple(mut self, t: Tuple) -> ParallelBuilder {
        self.tuples.push(t);
        self
    }

    /// Adds initial tuples.
    pub fn tuples<I: IntoIterator<Item = Tuple>>(mut self, ts: I) -> ParallelBuilder {
        self.tuples.extend(ts);
        self
    }

    /// Adds an initial process.
    pub fn spawn(mut self, name: &str, args: Vec<Value>) -> ParallelBuilder {
        self.spawns.push((name.to_owned(), args));
        self
    }

    /// Attaches a metrics handle. Counters use relaxed atomics, so the
    /// overhead under contention stays negligible.
    pub fn metrics(mut self, metrics: Metrics) -> ParallelBuilder {
        self.metrics = metrics;
        self
    }

    /// Builds the runtime.
    ///
    /// # Errors
    ///
    /// Fails if the program uses consensus or replication, if init
    /// expressions cannot evaluate, or if an initial spawn is invalid.
    pub fn build(self) -> Result<ParallelRuntime, RuntimeError> {
        for def in self.program.defs() {
            check_supported(&def.body)?;
        }
        let mut ds = Dataspace::new();
        ds.set_metrics(self.metrics.clone());
        let env = std::collections::HashMap::new();
        let ctx = EnvCtx {
            env: &env,
            vars: None,
            builtins: &self.builtins,
        };
        for fields in &self.program.init_tuples {
            let mut vals = Vec::with_capacity(fields.len());
            for f in fields {
                vals.push(eval(f, &ctx).map_err(|source| RuntimeError::Eval {
                    source,
                    context: "init tuple".to_owned(),
                })?);
            }
            ds.assert_tuple(ProcId::ENV, Tuple::new(vals));
        }
        for t in self.tuples {
            ds.assert_tuple(ProcId::ENV, t);
        }
        let mut initial = Vec::new();
        let mut next_pid = 1u64;
        let mut spawn_list: Vec<(String, Vec<Value>)> = Vec::new();
        for (name, args) in &self.program.init_spawns {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, &ctx).map_err(|source| RuntimeError::Eval {
                    source,
                    context: "init spawn argument".to_owned(),
                })?);
            }
            spawn_list.push((name.clone(), vals));
        }
        spawn_list.extend(self.spawns);
        for (name, args) in spawn_list {
            let def = self
                .program
                .def(&name)
                .ok_or_else(|| RuntimeError::UnknownProcess(name.clone()))?
                .clone();
            if def.params.len() != args.len() {
                return Err(RuntimeError::SpawnArity {
                    process: name,
                    expected: def.params.len(),
                    found: args.len(),
                });
            }
            initial.push(ProcessInstance::new(ProcId(next_pid), def, args));
            next_pid += 1;
        }
        Ok(ParallelRuntime {
            program: self.program,
            threads: self.threads,
            seed: self.seed,
            builtins: Arc::new(self.builtins),
            max_attempts: self.max_attempts,
            plan_mode: self.plan_mode,
            ds,
            initial,
            next_pid,
            metrics: self.metrics,
        })
    }
}

fn check_supported(stmts: &[CompiledStmt]) -> Result<(), RuntimeError> {
    for s in stmts {
        match s {
            CompiledStmt::Txn(t) => {
                if t.kind == TxnKind::Consensus {
                    return Err(RuntimeError::Unsupported(
                        "consensus transactions in the threaded executor".to_owned(),
                    ));
                }
            }
            CompiledStmt::Select(b) | CompiledStmt::Repeat(b) => {
                for br in b.iter() {
                    if br.guard.kind == TxnKind::Consensus {
                        return Err(RuntimeError::Unsupported(
                            "consensus transactions in the threaded executor".to_owned(),
                        ));
                    }
                    check_supported(&br.rest)?;
                }
            }
            CompiledStmt::Replicate(_) => {
                return Err(RuntimeError::Unsupported(
                    "replication in the threaded executor".to_owned(),
                ));
            }
        }
    }
    Ok(())
}

/// A multithreaded SDL executor over a shared dataspace.
///
/// # Examples
///
/// ```
/// use sdl_core::parallel::ParallelRuntime;
/// use sdl_core::CompiledProgram;
/// use sdl_tuple::{tuple, Value};
///
/// let program = CompiledProgram::from_source(r#"
///     process Worker() {
///         loop { exists j : <job, j>! -> <done, j> }
///     }
/// "#).unwrap();
/// let mut b = ParallelRuntime::builder(program).threads(4);
/// for j in 0..100i64 {
///     b = b.tuple(tuple![Value::atom("job"), j]);
/// }
/// for _ in 0..4 {
///     b = b.spawn("Worker", vec![]);
/// }
/// let (report, ds) = b.build().unwrap().run().unwrap();
/// assert!(report.outcome.is_completed());
/// assert_eq!(ds.len(), 100);
/// ```
#[derive(Debug)]
pub struct ParallelRuntime {
    program: Arc<CompiledProgram>,
    threads: usize,
    seed: u64,
    builtins: Arc<Builtins>,
    max_attempts: u64,
    plan_mode: PlanMode,
    ds: Dataspace,
    initial: Vec<ProcessInstance>,
    next_pid: u64,
    metrics: Metrics,
}

struct Shared {
    program: Arc<CompiledProgram>,
    builtins: Arc<Builtins>,
    ds: RwLock<Dataspace>,
    queue: Mutex<VecDeque<ProcessInstance>>,
    cv: Condvar,
    blocked: Mutex<Vec<Parked>>,
    /// Tasks enqueued or being processed; 0 ⇒ nothing can ever wake.
    pending: AtomicUsize,
    done: AtomicBool,
    attempts: AtomicU64,
    commits: AtomicU64,
    conflicts: AtomicU64,
    step_limited: AtomicBool,
    max_attempts: u64,
    plan_config: PlanConfig,
    next_pid: AtomicU64,
    error: Mutex<Option<RuntimeError>>,
    metrics: Metrics,
}

/// A blocked process: its watch keys, the instance, and when it parked
/// (for the blocked-time histogram; `None` when metrics are disabled).
struct Parked {
    watch: WatchSet,
    proc: ProcessInstance,
    since: Option<std::time::Instant>,
}

impl ParallelRuntime {
    /// Starts configuring a parallel runtime.
    pub fn builder(program: CompiledProgram) -> ParallelBuilder {
        ParallelBuilder {
            program: Arc::new(program),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0,
            builtins: Builtins::standard(),
            max_attempts: 500_000_000,
            plan_mode: PlanMode::default(),
            tuples: Vec::new(),
            spawns: Vec::new(),
            metrics: Metrics::disabled(),
        }
    }

    /// Runs to completion or quiescence, returning the report and the
    /// final dataspace.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] any worker hit.
    pub fn run(self) -> Result<(ParallelReport, Dataspace), RuntimeError> {
        let index_mode = self.ds.index_mode();
        let shared = Arc::new(Shared {
            program: self.program,
            builtins: self.builtins,
            ds: RwLock::new(self.ds),
            queue: Mutex::new(self.initial.clone().into()),
            cv: Condvar::new(),
            blocked: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(self.initial.len()),
            done: AtomicBool::new(self.initial.is_empty()),
            attempts: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            step_limited: AtomicBool::new(false),
            max_attempts: self.max_attempts,
            plan_config: PlanConfig {
                mode: self.plan_mode,
                index_mode,
            },
            next_pid: AtomicU64::new(self.next_pid),
            error: Mutex::new(None),
            metrics: self.metrics,
        });
        std::thread::scope(|scope| {
            for w in 0..self.threads {
                let shared = shared.clone();
                let seed = self.seed.wrapping_add(w as u64);
                scope.spawn(move || worker(&shared, seed));
            }
        });
        if let Some(e) = shared.error.lock().take() {
            return Err(e);
        }
        let blocked_pids: Vec<ProcId> = {
            let mut b: Vec<ProcId> = shared.blocked.lock().iter().map(|p| p.proc.id).collect();
            b.sort_unstable();
            b
        };
        let outcome = if shared.step_limited.load(Ordering::SeqCst) {
            Outcome::StepLimit
        } else if blocked_pids.is_empty() {
            Outcome::Completed
        } else {
            Outcome::Quiescent {
                blocked: blocked_pids,
            }
        };
        let ds = std::mem::take(&mut *shared.ds.write());
        let report = ParallelReport {
            outcome,
            commits: shared.commits.load(Ordering::SeqCst),
            attempts: shared.attempts.load(Ordering::SeqCst),
            conflicts: shared.conflicts.load(Ordering::SeqCst),
            final_tuples: ds.len(),
        };
        Ok((report, ds))
    }
}

fn worker(shared: &Shared, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let task = {
            let mut q = shared.queue.lock();
            loop {
                if shared.done.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                shared.cv.wait(&mut q);
            }
        };
        if let Err(e) = run_process(shared, task, &mut rng) {
            let mut slot = shared.error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
            finish_done(shared);
        }
        // This task is complete (terminated or parked in `blocked`).
        if shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            finish_done(shared);
        }
    }
}

fn finish_done(shared: &Shared) {
    shared.done.store(true, Ordering::SeqCst);
    let _q = shared.queue.lock();
    shared.cv.notify_all();
}

fn enqueue(shared: &Shared, proc: ProcessInstance) {
    shared.pending.fetch_add(1, Ordering::SeqCst);
    let mut q = shared.queue.lock();
    q.push_back(proc);
    shared.cv.notify_one();
}

/// Wakes blocked processes whose watch intersects `changed`.
fn wake(shared: &Shared, changed: &WatchSet) {
    if changed.is_empty() {
        return;
    }
    let woken: Vec<Parked> = {
        let mut blocked = shared.blocked.lock();
        let mut woken = Vec::new();
        let mut i = 0;
        while i < blocked.len() {
            if blocked[i].watch.intersects(changed) {
                woken.push(blocked.swap_remove(i));
            } else {
                i += 1;
            }
        }
        woken
    };
    for p in woken {
        shared.metrics.inc(Counter::WakeupCommit);
        shared.metrics.observe_timer(Hist::BlockedSeconds, p.since);
        enqueue(shared, p.proc);
    }
}

enum TxnOutcome {
    Committed(Pending),
    /// Query did not hold; carries the dataspace version the evaluation
    /// read, for the race-free park protocol.
    Failed {
        version: u64,
    },
}

/// Evaluate under the read lock, validate + apply under the write lock.
fn attempt(
    shared: &Shared,
    proc: &ProcessInstance,
    t: &CompiledTxn,
) -> Result<TxnOutcome, RuntimeError> {
    loop {
        if shared.attempts.fetch_add(1, Ordering::Relaxed) >= shared.max_attempts {
            shared.step_limited.store(true, Ordering::SeqCst);
            finish_done(shared);
            return Ok(TxnOutcome::Failed { version: 0 });
        }
        shared.metrics.inc(attempts_counter(t.kind));
        // Query under the read lock; effect construction (which may run
        // expensive host functions) outside any lock.
        let timer = shared.metrics.start_timer();
        let (solutions, version) = {
            let ds = shared.ds.read();
            let source = proc.def.view.window(&ds, &proc.env, &shared.builtins)?;
            let s = txn::evaluate_query(
                t,
                &source,
                &proc.env,
                &shared.builtins,
                SolveLimits::default(),
                shared.plan_config,
            )?;
            (s, ds.version())
        };
        shared.metrics.observe_timer(Hist::QueryEvalSeconds, timer);
        let Some(solutions) = solutions else {
            shared.metrics.inc(failed_counter(t.kind));
            return Ok(TxnOutcome::Failed { version });
        };
        let p = txn::build_effects(t, &solutions, &proc.env, &shared.builtins)?;
        let changed = {
            let mut ds = shared.ds.write();
            if !p.validate(&ds) {
                shared.conflicts.fetch_add(1, Ordering::Relaxed);
                shared.metrics.inc(Counter::TxnConflicts);
                drop(ds);
                continue; // somebody raced us; re-evaluate
            }
            let mut changed = WatchSet::new();
            let allowed: Vec<bool> = p
                .asserts
                .iter()
                .map(|tu| proc.def.view.exports(tu, &ds, &proc.env, &shared.builtins))
                .collect();
            for id in &p.retracts {
                if let Some(tu) = ds.retract(*id) {
                    changed.add_tuple(&tu);
                }
            }
            for (tu, ok) in p.asserts.iter().zip(&allowed) {
                if *ok {
                    ds.assert_tuple(proc.id, tu.clone());
                    changed.add_tuple(tu);
                } else {
                    shared.metrics.inc(Counter::ExportDropped);
                }
            }
            changed
        };
        shared.commits.fetch_add(1, Ordering::Relaxed);
        shared.metrics.inc(committed_counter(t.kind));
        wake(shared, &changed);
        return Ok(TxnOutcome::Committed(p));
    }
}

/// Applies `let`s and `spawn`s; returns true if the process terminated
/// (exit with no enclosing loop, or abort).
fn control(shared: &Shared, proc: &mut ProcessInstance, p: &Pending) -> Result<bool, RuntimeError> {
    for (name, v) in &p.lets {
        proc.env.insert(name.clone(), v.clone());
    }
    for (name, args) in &p.spawns {
        let def = shared
            .program
            .def(name)
            .ok_or_else(|| RuntimeError::UnknownProcess(name.clone()))?
            .clone();
        if def.params.len() != args.len() {
            return Err(RuntimeError::SpawnArity {
                process: name.clone(),
                expected: def.params.len(),
                found: args.len(),
            });
        }
        let id = ProcId(shared.next_pid.fetch_add(1, Ordering::SeqCst));
        shared.metrics.inc(Counter::ProcessesSpawned);
        enqueue(shared, ProcessInstance::new(id, def, args.clone()));
    }
    if p.abort {
        return Ok(true);
    }
    if p.exit {
        return Ok(proc.unwind_exit().is_none());
    }
    Ok(false)
}

enum ProcFate {
    /// Keep stepping this process.
    Continue,
    /// Park it on these watch keys; `version` is the earliest dataspace
    /// version any of its failed evaluations read.
    Park { watch: WatchSet, version: u64 },
    /// The process is done.
    Terminated,
}

/// Runs one process until it terminates or parks.
fn run_process(
    shared: &Shared,
    mut proc: ProcessInstance,
    rng: &mut StdRng,
) -> Result<(), RuntimeError> {
    loop {
        if shared.done.load(Ordering::SeqCst) {
            return Ok(());
        }
        match step_once(shared, &mut proc, rng)? {
            ProcFate::Continue => {}
            ProcFate::Terminated => return Ok(()),
            ProcFate::Park { watch, version } => {
                park(shared, watch, version, proc);
                return Ok(());
            }
        }
    }
}

fn step_once(
    shared: &Shared,
    proc: &mut ProcessInstance,
    rng: &mut StdRng,
) -> Result<ProcFate, RuntimeError> {
    let top = proc.frames.last().cloned();
    match top {
        None => Ok(ProcFate::Terminated),
        Some(Frame::Seq { stmts, idx }) => {
            if idx >= stmts.len() {
                proc.frames.pop();
                return Ok(ProcFate::Continue);
            }
            match stmts[idx].clone() {
                CompiledStmt::Txn(t) => match attempt(shared, proc, &t)? {
                    TxnOutcome::Committed(p) => {
                        advance(proc);
                        if control(shared, proc, &p)? {
                            return Ok(ProcFate::Terminated);
                        }
                        Ok(ProcFate::Continue)
                    }
                    TxnOutcome::Failed { version } => match t.kind {
                        TxnKind::Immediate => {
                            advance(proc);
                            Ok(ProcFate::Continue)
                        }
                        TxnKind::Delayed => Ok(ProcFate::Park {
                            watch: txn::watch_set(&t, &proc.env, &shared.builtins),
                            version,
                        }),
                        TxnKind::Consensus => unreachable!("rejected at build"),
                    },
                },
                CompiledStmt::Select(branches) => guards(shared, proc, &branches, true, rng),
                CompiledStmt::Repeat(branches) => {
                    advance(proc);
                    proc.frames.push(Frame::Loop { branches });
                    Ok(ProcFate::Continue)
                }
                CompiledStmt::Replicate(_) => unreachable!("rejected at build"),
            }
        }
        Some(Frame::Loop { branches }) => guards(shared, proc, &branches, false, rng),
        Some(Frame::Repl { .. }) => unreachable!("rejected at build"),
    }
}

fn advance(proc: &mut ProcessInstance) {
    if let Some(Frame::Seq { idx, .. }) = proc.frames.last_mut() {
        *idx += 1;
    }
}

fn guards(
    shared: &Shared,
    proc: &mut ProcessInstance,
    branches: &Arc<[CompiledBranch]>,
    is_select: bool,
    rng: &mut StdRng,
) -> Result<ProcFate, RuntimeError> {
    let mut order: Vec<usize> = (0..branches.len()).collect();
    order.shuffle(rng);
    let mut delayed_present = false;
    let mut earliest_version = u64::MAX;
    for &i in &order {
        let guard = branches[i].guard.clone();
        if guard.kind == TxnKind::Delayed {
            delayed_present = true;
        }
        match attempt(shared, proc, &guard)? {
            TxnOutcome::Committed(p) => {
                if is_select {
                    advance(proc);
                }
                if control(shared, proc, &p)? {
                    return Ok(ProcFate::Terminated);
                }
                if !p.exit && !branches[i].rest.is_empty() {
                    proc.frames.push(Frame::Seq {
                        stmts: branches[i].rest.clone(),
                        idx: 0,
                    });
                }
                return Ok(ProcFate::Continue);
            }
            TxnOutcome::Failed { version } => {
                earliest_version = earliest_version.min(version);
            }
        }
    }
    if delayed_present {
        let mut w = WatchSet::new();
        for b in branches.iter() {
            w.extend(&txn::watch_set(&b.guard, &proc.env, &shared.builtins));
        }
        return Ok(ProcFate::Park {
            watch: w,
            version: earliest_version,
        });
    }
    if is_select {
        advance(proc);
    } else {
        proc.frames.pop();
    }
    Ok(ProcFate::Continue)
}

/// Parks a blocked process without losing wake-ups.
///
/// The race: a commit lands *after* our failed evaluation but *before* we
/// are visible in `blocked` — its `wake` would miss us. The protocol:
/// insert into `blocked` while holding the dataspace **read** lock, then
/// compare the current version with the one the evaluation read. If they
/// differ, something committed in between: take ourselves back out and
/// re-queue. If they are equal, no commit happened since evaluation, and
/// any later commit must take the write lock — which orders after our
/// read lock — so its `wake` will see us.
fn park(shared: &Shared, watch: WatchSet, eval_version: u64, proc: ProcessInstance) {
    let requeue = {
        let ds = shared.ds.read();
        let mut blocked = shared.blocked.lock();
        if ds.version() != eval_version {
            Some(proc)
        } else {
            shared.metrics.inc(Counter::ProcessesBlocked);
            blocked.push(Parked {
                watch,
                proc,
                since: shared.metrics.start_timer(),
            });
            None
        }
    };
    if let Some(p) = requeue {
        enqueue(shared, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompiledProgram;
    use sdl_dataspace::TupleSource;
    use sdl_tuple::tuple;

    fn job_program() -> CompiledProgram {
        CompiledProgram::from_source(
            "process Worker() {
                loop { exists j : <job, j>! -> <done, j> }
             }",
        )
        .unwrap()
    }

    #[test]
    fn workers_drain_the_job_pool() {
        let mut b = ParallelRuntime::builder(job_program()).threads(4).seed(1);
        for j in 0..200i64 {
            b = b.tuple(tuple![Value::atom("job"), j]);
        }
        for _ in 0..8 {
            b = b.spawn("Worker", vec![]);
        }
        let (report, ds) = b.build().unwrap().run().unwrap();
        assert!(report.outcome.is_completed(), "{:?}", report.outcome);
        assert_eq!(report.commits, 200);
        assert_eq!(ds.len(), 200);
        assert!(!ds.contains_match(&sdl_tuple::pattern![Value::atom("job"), any]));
    }

    #[test]
    fn delayed_consumers_wait_for_producers() {
        let program = CompiledProgram::from_source(
            "process Consumer(n) {
                exists v : <item, v>! => <got, n, v>;
             }
             process Producer(n) {
                -> <item, n>;
             }",
        )
        .unwrap();
        let mut b = ParallelRuntime::builder(program).threads(4).seed(2);
        for n in 0..20i64 {
            b = b.spawn("Consumer", vec![Value::Int(n)]);
        }
        for n in 0..20i64 {
            b = b.spawn("Producer", vec![Value::Int(n)]);
        }
        let (report, ds) = b.build().unwrap().run().unwrap();
        assert!(report.outcome.is_completed(), "{:?}", report.outcome);
        assert_eq!(
            ds.count_matches(&sdl_tuple::pattern![Value::atom("got"), any, any]),
            20
        );
    }

    #[test]
    fn quiescence_detected() {
        let program =
            CompiledProgram::from_source("process Waiter() { <never> => skip; }").unwrap();
        let b = ParallelRuntime::builder(program)
            .threads(2)
            .spawn("Waiter", vec![])
            .spawn("Waiter", vec![]);
        let (report, _) = b.build().unwrap().run().unwrap();
        match report.outcome {
            Outcome::Quiescent { blocked } => assert_eq!(blocked.len(), 2),
            other => panic!("expected quiescence, got {other:?}"),
        }
    }

    #[test]
    fn consensus_is_rejected() {
        let program = CompiledProgram::from_source("process P() { <x> @> skip; }").unwrap();
        let r = ParallelRuntime::builder(program).spawn("P", vec![]).build();
        assert!(matches!(r, Err(RuntimeError::Unsupported(_))));
    }

    #[test]
    fn replication_is_rejected() {
        let program = CompiledProgram::from_source("process P() { par { <x>! -> skip } }").unwrap();
        let r = ParallelRuntime::builder(program).spawn("P", vec![]).build();
        assert!(matches!(r, Err(RuntimeError::Unsupported(_))));
    }

    #[test]
    fn agrees_with_serial_scheduler() {
        // Pairwise summation: any schedule leaves the same total.
        let src = "process W() {
            loop { exists a, b : <v, a>!, <v, b>! -> <v, a + b> }
        }";
        let expected: i64 = (1..=64).sum();
        let program = CompiledProgram::from_source(src).unwrap();
        let mut b = ParallelRuntime::builder(program).threads(4).seed(3);
        for k in 1..=64i64 {
            b = b.tuple(tuple![Value::atom("v"), k]);
        }
        for _ in 0..4 {
            b = b.spawn("W", vec![]);
        }
        let (report, ds) = b.build().unwrap().run().unwrap();
        assert!(report.outcome.is_completed());
        assert_eq!(ds.len(), 1);
        let (_, t) = ds.iter().next().unwrap();
        assert_eq!(t[1], Value::Int(expected));
    }

    #[test]
    fn conflict_counter_sees_contention() {
        // Many workers fighting over one hot tuple.
        let src = "process W() {
            loop { exists c : <counter, c>! : c < 200 -> <counter, c + 1> }
        }";
        let program = CompiledProgram::from_source(src).unwrap();
        let mut b = ParallelRuntime::builder(program)
            .threads(4)
            .seed(4)
            .tuple(tuple![Value::atom("counter"), 0i64]);
        for _ in 0..4 {
            b = b.spawn("W", vec![]);
        }
        let (report, ds) = b.build().unwrap().run().unwrap();
        assert!(report.outcome.is_completed());
        assert!(ds.contains_match(&sdl_tuple::pattern![Value::atom("counter"), 200]));
        assert_eq!(report.commits, 200);
    }

    #[test]
    fn metrics_agree_with_report_and_serial_run() {
        // The hot-counter program commits exactly 200 times under ANY
        // schedule, so serial and parallel totals must agree; with many
        // threads on one tuple, validation conflicts are all but certain,
        // but they are timing-dependent — retry a few seeds rather than
        // flake.
        let src = "process W() {
            loop { exists c : <counter, c>! : c < 200 -> <counter, c + 1> }
        }";
        let serial_commits = {
            let program = CompiledProgram::from_source(src).unwrap();
            let mut rt = crate::Runtime::builder(program)
                .tuple(tuple![Value::atom("counter"), 0i64])
                .spawn("W", vec![])
                .build()
                .unwrap();
            let report = rt.run().unwrap();
            report.commits
        };
        assert_eq!(serial_commits, 200);

        for seed in 0..32u64 {
            let (metrics, registry) = Metrics::registry();
            let program = CompiledProgram::from_source(src).unwrap();
            let mut b = ParallelRuntime::builder(program)
                .threads(8)
                .seed(seed)
                .metrics(metrics)
                .tuple(tuple![Value::atom("counter"), 0i64]);
            for _ in 0..8 {
                b = b.spawn("W", vec![]);
            }
            let (report, _) = b.build().unwrap().run().unwrap();
            assert!(report.outcome.is_completed());
            assert_eq!(report.commits, serial_commits);
            assert_eq!(
                registry.counter(Counter::TxnCommittedImmediate),
                report.commits
            );
            assert_eq!(registry.counter(Counter::TxnConflicts), report.conflicts);
            assert!(registry.counter(Counter::TuplesAsserted) > 200);
            assert_eq!(registry.counter(Counter::ProcessesBlocked), 0);
            if report.conflicts > 0 {
                return; // contention observed and accounted for
            }
        }
        panic!("no validation conflicts across 32 seeds of 8-thread contention");
    }
}
