//! End-to-end replication over real sockets: a leader server logging to
//! a WAL and shipping it over `SDLREPL1`, a follower bootstrapping from
//! the stream and serving reads, and writes to the follower answered
//! with a `NotLeader` redirect carrying the leader's client address.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use sdl::durability::FsyncPolicy;
use sdl::metrics::{Counter, Gauge, Metrics, MetricsRegistry};
use sdl::server::{serve, Client, Request, Response, Server, ServerConfig};
use sdl_tuple::{pattern, tuple, Value};

/// A fresh, unique scratch directory for one test case.
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "sdl-replnet-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Polls `cond` until it holds or `deadline` elapses.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// A leader with a WAL and a replication listener on ephemeral ports.
/// `Always` fsync keeps the shippable watermark hard on the commit
/// frontier, so followers see every commit promptly.
fn start_leader(dir: &Path) -> (Server, std::sync::Arc<MetricsRegistry>) {
    let (metrics, registry) = Metrics::registry();
    let cfg = ServerConfig {
        wal_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        repl_addr: Some("127.0.0.1:0".to_owned()),
        ..ServerConfig::default()
    };
    let server = serve(cfg, metrics).expect("bind leader");
    (server, registry)
}

fn start_follower(leader: &Server) -> (Server, std::sync::Arc<MetricsRegistry>) {
    let (metrics, registry) = Metrics::registry();
    let cfg = ServerConfig {
        follow: Some(leader.repl_addr().expect("leader ships").to_string()),
        ..ServerConfig::default()
    };
    let server = serve(cfg, metrics).expect("bind follower");
    (server, registry)
}

#[test]
fn follower_serves_leader_writes_after_lag_drains() {
    let dir = temp_dir("reads");
    let (leader, leader_reg) = start_leader(&dir);
    let mut w = Client::connect(leader.addr()).expect("connect leader");
    w.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // History before the follower exists: it must arrive via bootstrap.
    for k in 0..3i64 {
        w.out(tuple![Value::atom("pre"), k]).expect("out");
    }

    let (follower, follower_reg) = start_follower(&leader);
    let mut r = Client::connect(follower.addr()).expect("connect follower");
    r.set_timeout(Some(Duration::from_secs(10))).unwrap();

    assert!(
        wait_until(Duration::from_secs(10), || {
            leader_reg.gauge(Gauge::ReplFollowers) == 1
        }),
        "leader never saw the follower attach"
    );

    // Bootstrapped history is readable on the follower.
    for k in 0..3i64 {
        let got = wait_until(Duration::from_secs(10), || {
            matches!(r.try_read(pattern![Value::atom("pre"), k]), Ok(Some(_)))
        });
        assert!(got, "pre-attach tuple {k} never reached the follower");
    }

    // Writes committed while the follower is attached stream across.
    for k in 0..20i64 {
        w.out(tuple![Value::atom("live"), k]).expect("out");
    }
    for k in [0i64, 7, 19] {
        let got = wait_until(Duration::from_secs(10), || {
            matches!(r.try_read(pattern![Value::atom("live"), k]), Ok(Some(_)))
        });
        assert!(got, "live tuple {k} never reached the follower");
    }

    // Retractions replicate too: a take on the leader disappears from
    // the follower.
    assert!(w
        .try_take(pattern![Value::atom("live"), 7i64])
        .expect("inp")
        .is_some());
    assert!(
        wait_until(Duration::from_secs(10), || {
            matches!(r.try_read(pattern![Value::atom("live"), 7i64]), Ok(None))
        }),
        "retraction never reached the follower"
    );

    // With the leader idle, lag drains to zero and the apply counter
    // shows the stream actually flowed.
    assert!(
        wait_until(Duration::from_secs(10), || {
            follower_reg.gauge(Gauge::ReplLagCommits) == 0
        }),
        "follower lag stuck at {}",
        follower_reg.gauge(Gauge::ReplLagCommits)
    );
    assert!(follower_reg.counter(Counter::ReplRecordsApplied) >= 20);

    follower.shutdown().expect("follower shutdown");
    assert!(
        wait_until(Duration::from_secs(10), || {
            leader_reg.gauge(Gauge::ReplFollowers) == 0
        }),
        "leader never noticed the follower detach"
    );
    leader.shutdown().expect("leader shutdown");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn writes_to_a_follower_redirect_to_the_leader() {
    let dir = temp_dir("redirect");
    let (leader, _leader_reg) = start_leader(&dir);
    let (follower, follower_reg) = start_follower(&leader);

    let mut c = Client::connect(follower.addr()).expect("connect follower");
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // Every mutating request comes back NotLeader with the leader's
    // client address, and nothing is committed follower-side.
    let id = c
        .send(&Request::Out(tuple![Value::atom("nope"), 1i64]))
        .expect("send");
    match c.wait_for(id).expect("reply") {
        Response::NotLeader(addr) => {
            assert_eq!(addr, leader.addr().to_string(), "redirect address");
        }
        other => panic!("expected NotLeader, got {other:?}"),
    }
    let id = c
        .send(&Request::Inp(pattern![Value::atom("nope"), any]))
        .expect("send");
    assert!(matches!(
        c.wait_for(id).expect("reply"),
        Response::NotLeader(_)
    ));
    // The typed client surfaces the redirect as PermissionDenied.
    let err = c.out(tuple![Value::atom("nope"), 2i64]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    assert!(err.to_string().contains(&leader.addr().to_string()));
    assert_eq!(follower_reg.counter(Counter::ReplNotLeaderRedirects), 3);

    // Reads still work — and a *blocking* read parked on the follower
    // is woken by a commit that arrives over replication.
    let id = c
        .send(&Request::Rd(pattern![Value::atom("bridge"), any]))
        .expect("send rd");
    let (pid, parked) = c.recv().expect("parked notification");
    assert_eq!(pid, id);
    assert!(matches!(parked, Response::Parked), "{parked:?}");

    let mut w = Client::connect(leader.addr()).expect("connect leader");
    w.set_timeout(Some(Duration::from_secs(10))).unwrap();
    w.out(tuple![Value::atom("bridge"), 9i64]).expect("out");
    match c.wait_for(id).expect("wake") {
        Response::Tuple(t) => assert_eq!(t, tuple![Value::atom("bridge"), 9i64]),
        other => panic!("expected tuple, got {other:?}"),
    }

    follower.shutdown().expect("follower shutdown");
    leader.shutdown().expect("leader shutdown");
    fs::remove_dir_all(&dir).ok();
}
