//! `sdl-run` — run an SDL program from a `.sdl` source file.
//!
//! ```text
//! sdl-run <file.sdl> [--seed N] [--rounds] [--trace] [--stats]
//!         [--max-attempts N] [--grid WxH]
//! ```
//!
//! * `--rounds`      use the maximal-parallel-rounds scheduler
//! * `--trace`       print the event timeline after the run
//! * `--stats`       print per-process statistics
//! * `--grid WxH`    register the `neighbor` predicate for a W×H grid
//! * `--seed N`      scheduler seed (default 0)

use std::process::ExitCode;

use sdl::core::{Builtins, CompiledProgram, RunLimits, Runtime};
use sdl::trace::{render_dataspace, Stats};

struct Args {
    file: String,
    seed: u64,
    rounds: bool,
    trace: bool,
    stats: bool,
    max_attempts: u64,
    grid: Option<(i64, i64)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sdl-run <file.sdl> [--seed N] [--rounds] [--trace] [--stats] \
         [--max-attempts N] [--grid WxH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        seed: 0,
        rounds: false,
        trace: false,
        stats: false,
        max_attempts: RunLimits::default().max_attempts,
        grid: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--rounds" => args.rounds = true,
            "--trace" => args.trace = true,
            "--stats" => args.stats = true,
            "--max-attempts" => {
                args.max_attempts =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--grid" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (w, h) = spec.split_once('x').unwrap_or_else(|| usage());
                args.grid = Some((
                    w.parse().unwrap_or_else(|_| usage()),
                    h.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--help" | "-h" => usage(),
            f if args.file.is_empty() && !f.starts_with('-') => args.file = f.to_owned(),
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sdl-run: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match CompiledProgram::from_source(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sdl-run: {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let mut builtins = Builtins::standard();
    if let Some((w, h)) = args.grid {
        builtins.register_grid_neighbor(w, h);
    }
    let mut rt = match Runtime::builder(program)
        .seed(args.seed)
        .trace(args.trace || args.stats)
        .builtins(builtins)
        .limits(RunLimits {
            max_attempts: args.max_attempts,
        })
        .build()
    {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("sdl-run: init failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.rounds { rt.run_rounds() } else { rt.run() };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sdl-run: runtime error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    if matches!(report.outcome, sdl::core::Outcome::Quiescent { .. }) {
        print!("{}", rt.blocked_report());
    }
    println!("{}", render_dataspace(rt.dataspace(), 20));
    if args.stats {
        println!("{}", Stats::from_log(rt.event_log().expect("tracing on")));
    }
    if args.trace {
        println!("timeline:");
        print!(
            "{}",
            sdl::trace::timeline::render(rt.event_log().expect("tracing on"))
        );
    }
    ExitCode::SUCCESS
}
