//! The conjunctive query solver.
//!
//! SDL transactions open with a query: a quantifier, a *binding query*
//! (tuple patterns, some tagged for retraction, some negated) and a *test
//! query* (a predicate over the bound variables). The solver enumerates
//! solutions of the binding query over a [`TupleSource`] — the process
//! window — and filters them through negations and the test predicate.
//!
//! The test predicate is supplied as a callback so this crate stays
//! independent of the expression language: `sdl-lang` compiles test
//! queries down to a `FnMut(&Bindings) -> bool`.
//!
//! ## Semantics
//!
//! * Positive atoms are matched left to right, depth-first, candidates in
//!   deterministic instance-id order.
//! * Two atoms tagged for **retraction** never match the same instance
//!   (retracting one instance twice is meaningless); a *read* atom may
//!   share an instance with any other atom — all atoms see the
//!   pre-transaction state.
//! * A **negated** atom succeeds iff no visible instance matches it under
//!   the current bindings; variables appearing only under negation are
//!   existential within the check and remain unbound.
//! * `exists` takes the first solution; `forall` enumerates all solutions
//!   (see [`Solver::enumerate`]) and the caller applies the paper's rule —
//!   the transaction succeeds iff every solution satisfies the test.

use sdl_metrics::Counter;
use sdl_tuple::{Bindings, Field, Pattern, TupleId, Value};

use crate::store::TupleSource;

/// How an atom participates in a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomMode {
    /// Match and read (plain membership).
    Read,
    /// Match, read, and tag the matched instance for retraction
    /// (the paper's `↑`, our concrete syntax `!`).
    Retract,
    /// Require that *no* visible tuple matches (the paper's `¬`).
    Neg,
}

/// One atom of a conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAtom {
    /// The tuple pattern.
    pub pattern: Pattern,
    /// Read, retract, or negated.
    pub mode: AtomMode,
}

impl QueryAtom {
    /// A plain read atom.
    pub fn read(pattern: Pattern) -> QueryAtom {
        QueryAtom {
            pattern,
            mode: AtomMode::Read,
        }
    }

    /// A retraction-tagged atom.
    pub fn retract(pattern: Pattern) -> QueryAtom {
        QueryAtom {
            pattern,
            mode: AtomMode::Retract,
        }
    }

    /// A negated atom.
    pub fn neg(pattern: Pattern) -> QueryAtom {
        QueryAtom {
            pattern,
            mode: AtomMode::Neg,
        }
    }
}

/// One solution of a query: bindings plus the evidence used to reach it.
///
/// The read/retract instance lists and the resolved negation patterns form
/// the transaction's *read set*, which the parallel-round scheduler and the
/// optimistic executor use for conflict detection and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// Final variable bindings (indexed by `VarId`).
    pub bindings: Vec<Option<Value>>,
    /// Instances matched by read atoms.
    pub reads: Vec<TupleId>,
    /// Instances matched by retract-tagged atoms (pairwise distinct).
    pub retracts: Vec<TupleId>,
    /// Negated patterns, resolved under the final bindings, that were
    /// verified to have no match.
    pub neg_checks: Vec<Pattern>,
}

impl Solution {
    /// Restores this solution's bindings into a fresh environment.
    pub fn to_bindings(&self) -> Bindings {
        let mut b = Bindings::new(self.bindings.len());
        b.restore(&self.bindings);
        b
    }
}

/// Caps on query evaluation, protecting `forall`/replication enumeration
/// from combinatorial blow-up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveLimits {
    /// Maximum number of solutions to enumerate.
    pub max_solutions: usize,
}

impl Default for SolveLimits {
    fn default() -> SolveLimits {
        SolveLimits {
            max_solutions: 1_000_000,
        }
    }
}

/// Resolves `pattern` under `bindings`: bound variables become constants.
pub fn resolve_pattern(pattern: &Pattern, bindings: &Bindings) -> Pattern {
    Pattern::new(
        pattern
            .fields()
            .iter()
            .map(|f| match f {
                Field::Var(v) => match bindings.get(*v) {
                    Some(val) => Field::Const(val.clone()),
                    None => Field::Var(*v),
                },
                other => other.clone(),
            })
            .collect(),
    )
}

/// A query solver over a [`TupleSource`].
///
/// # Examples
///
/// ```
/// use sdl_dataspace::{Dataspace, QueryAtom, Solver};
/// use sdl_tuple::{pattern, tuple, ProcId, Value, VarId};
///
/// let mut d = Dataspace::new();
/// d.assert_tuple(ProcId::ENV, tuple![Value::atom("year"), 90]);
///
/// // ∃α: <year, α> : α > 87
/// let atoms = vec![QueryAtom::retract(pattern![Value::atom("year"), var 0])];
/// let solver = Solver::new(&d, &atoms, 1);
/// let sol = solver
///     .first(&mut |b| b.get(VarId(0)).and_then(|v| v.as_int()).is_some_and(|a| a > 87))
///     .expect("year 90 satisfies the query");
/// assert_eq!(sol.bindings[0], Some(Value::Int(90)));
/// assert_eq!(sol.retracts.len(), 1);
/// ```
pub struct Solver<'a, S: TupleSource + ?Sized> {
    source: &'a S,
    atoms: &'a [QueryAtom],
    n_vars: usize,
}

impl<'a, S: TupleSource + ?Sized> Solver<'a, S> {
    /// Creates a solver for `atoms` with `n_vars` quantified variables.
    pub fn new(source: &'a S, atoms: &'a [QueryAtom], n_vars: usize) -> Solver<'a, S> {
        Solver {
            source,
            atoms,
            n_vars,
        }
    }

    /// First solution satisfying negations and `test` (existential
    /// quantification), or `None`.
    pub fn first(&self, test: &mut dyn FnMut(&Bindings) -> bool) -> Option<Solution> {
        let positives = self.positive_count();
        self.first_staged(None, &mut |depth, b| depth < positives || test(b))
    }

    /// All solutions satisfying negations and `test`, up to
    /// `limits.max_solutions`.
    pub fn all(
        &self,
        test: &mut dyn FnMut(&Bindings) -> bool,
        limits: SolveLimits,
    ) -> Vec<Solution> {
        let positives = self.positive_count();
        self.all_staged(None, &mut |depth, b| depth < positives || test(b), limits)
    }

    /// All solutions of the *binding query* (positive atoms + negations),
    /// ignoring the test — used for `forall`, where the paper requires
    /// every solution of the binding query to satisfy the test.
    pub fn enumerate(&self, limits: SolveLimits) -> Vec<Solution> {
        self.all(&mut |_| true, limits)
    }

    /// Number of positive (read/retract) atoms — the maximum `depth`
    /// passed to a staged test.
    pub fn positive_count(&self) -> usize {
        self.atoms
            .iter()
            .filter(|a| a.mode != AtomMode::Neg)
            .count()
    }

    /// Like [`Solver::first`], but with a *staged* test invoked after
    /// every positive atom match with the number of atoms matched so far
    /// (`1..=positive_count()`), letting the caller prune the join as soon
    /// as a test conjunct's variables are bound. `init` seeds variable
    /// bindings (used by view-rule condition checks).
    pub fn first_staged(
        &self,
        init: Option<&Bindings>,
        staged: &mut dyn FnMut(usize, &Bindings) -> bool,
    ) -> Option<Solution> {
        let mut found = None;
        self.search(init, staged, &mut |sol| {
            found = Some(sol);
            false // stop
        });
        found
    }

    /// Staged variant of [`Solver::all`].
    pub fn all_staged(
        &self,
        init: Option<&Bindings>,
        staged: &mut dyn FnMut(usize, &Bindings) -> bool,
        limits: SolveLimits,
    ) -> Vec<Solution> {
        let mut out = Vec::new();
        self.search(init, staged, &mut |sol| {
            out.push(sol);
            out.len() < limits.max_solutions
        });
        out
    }

    /// Depth-first search over positive atoms; `emit` returns `false` to
    /// stop the search.
    fn search(
        &self,
        init: Option<&Bindings>,
        staged: &mut dyn FnMut(usize, &Bindings) -> bool,
        emit: &mut dyn FnMut(Solution) -> bool,
    ) {
        let positives: Vec<&QueryAtom> = self
            .atoms
            .iter()
            .filter(|a| a.mode != AtomMode::Neg)
            .collect();
        let negatives: Vec<&QueryAtom> = self
            .atoms
            .iter()
            .filter(|a| a.mode == AtomMode::Neg)
            .collect();
        let mut bindings = match init {
            Some(b) => {
                let mut seeded = Bindings::new(self.n_vars.max(b.len()));
                seeded.restore(&b.to_vec());
                seeded
            }
            None => Bindings::new(self.n_vars),
        };
        let mut reads: Vec<TupleId> = Vec::new();
        let mut retracts: Vec<TupleId> = Vec::new();
        self.descend(
            &positives,
            &negatives,
            0,
            &mut bindings,
            &mut reads,
            &mut retracts,
            staged,
            emit,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        positives: &[&QueryAtom],
        negatives: &[&QueryAtom],
        depth: usize,
        bindings: &mut Bindings,
        reads: &mut Vec<TupleId>,
        retracts: &mut Vec<TupleId>,
        staged: &mut dyn FnMut(usize, &Bindings) -> bool,
        emit: &mut dyn FnMut(Solution) -> bool,
    ) -> bool {
        if depth == positives.len() {
            // All positive atoms matched: check negations, then emit.
            let mut neg_checks = Vec::with_capacity(negatives.len());
            for neg in negatives {
                let resolved = resolve_pattern(&neg.pattern, bindings);
                if self.source.contains_match(&resolved) {
                    return true; // this branch fails; keep searching
                }
                neg_checks.push(resolved);
            }
            // With no positive atoms the staged test has not run yet.
            if positives.is_empty() && !staged(0, bindings) {
                return true;
            }
            return emit(Solution {
                bindings: bindings.to_vec(),
                reads: reads.clone(),
                retracts: retracts.clone(),
                neg_checks,
            });
        }

        let atom = positives[depth];
        let resolved = resolve_pattern(&atom.pattern, bindings);
        let metrics = self.source.metrics();
        let candidates = self.source.candidate_ids(&resolved);
        metrics.add(Counter::MatchCandidates, candidates.len() as u64);
        for id in candidates {
            if atom.mode == AtomMode::Retract && retracts.contains(&id) {
                continue; // retract atoms take pairwise-distinct instances
            }
            let tuple = match self.source.tuple(id) {
                Some(t) => t,
                None => continue,
            };
            let mark = bindings.mark();
            metrics.inc(Counter::MatchAttempts);
            if !atom.pattern.matches(tuple, bindings) {
                continue;
            }
            if !staged(depth + 1, bindings) {
                bindings.undo_to(mark);
                metrics.inc(Counter::SolverBacktracks);
                continue;
            }
            match atom.mode {
                AtomMode::Read => reads.push(id),
                AtomMode::Retract => retracts.push(id),
                AtomMode::Neg => unreachable!("negatives filtered out"),
            }
            let keep_going = self.descend(
                positives,
                negatives,
                depth + 1,
                bindings,
                reads,
                retracts,
                staged,
                emit,
            );
            match atom.mode {
                AtomMode::Read => {
                    reads.pop();
                }
                AtomMode::Retract => {
                    retracts.pop();
                }
                AtomMode::Neg => unreachable!(),
            }
            bindings.undo_to(mark);
            metrics.inc(Counter::SolverBacktracks);
            if !keep_going {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Dataspace;
    use sdl_tuple::{pattern, tuple, ProcId, VarId};

    fn a(s: &str) -> Value {
        Value::atom(s)
    }

    fn setup_years() -> Dataspace {
        let mut d = Dataspace::new();
        d.assert_tuple(ProcId::ENV, tuple![a("year"), 85]);
        d.assert_tuple(ProcId::ENV, tuple![a("year"), 90]);
        d.assert_tuple(ProcId::ENV, tuple![a("year"), 95]);
        d
    }

    #[test]
    fn exists_with_test() {
        let d = setup_years();
        // ∃α: <year, α>↑ : α > 87
        let atoms = vec![QueryAtom::retract(pattern![a("year"), var 0])];
        let solver = Solver::new(&d, &atoms, 1);
        let sol = solver
            .first(&mut |b| b.get(VarId(0)).unwrap().as_int().unwrap() > 87)
            .unwrap();
        let bound = sol.bindings[0].as_ref().unwrap().as_int().unwrap();
        assert!(bound > 87);
        assert_eq!(sol.retracts.len(), 1);
        assert!(sol.reads.is_empty());
    }

    #[test]
    fn exists_failure() {
        let d = setup_years();
        let atoms = vec![QueryAtom::read(pattern![a("year"), var 0])];
        let solver = Solver::new(&d, &atoms, 1);
        assert!(solver
            .first(&mut |b| b.get(VarId(0)).unwrap().as_int().unwrap() > 100)
            .is_none());
    }

    #[test]
    fn all_solutions() {
        let d = setup_years();
        let atoms = vec![QueryAtom::read(pattern![a("year"), var 0])];
        let solver = Solver::new(&d, &atoms, 1);
        let sols = solver.all(&mut |_| true, SolveLimits::default());
        assert_eq!(sols.len(), 3);
        // Deterministic order: instance id order = assertion order.
        assert_eq!(sols[0].bindings[0], Some(Value::Int(85)));
        assert_eq!(sols[2].bindings[0], Some(Value::Int(95)));
    }

    #[test]
    fn max_solutions_cap() {
        let d = setup_years();
        let atoms = vec![QueryAtom::read(pattern![a("year"), var 0])];
        let solver = Solver::new(&d, &atoms, 1);
        let sols = solver.all(&mut |_| true, SolveLimits { max_solutions: 2 });
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn join_across_atoms() {
        // Sum3 shape: ∃ν,α,μ,β: <ν,α>↑, <μ,β>↑ : ν ≠ μ
        let mut d = Dataspace::new();
        d.assert_tuple(ProcId::ENV, tuple![1, 10]);
        d.assert_tuple(ProcId::ENV, tuple![2, 20]);
        let atoms = vec![
            QueryAtom::retract(pattern![var 0, var 1]),
            QueryAtom::retract(pattern![var 2, var 3]),
        ];
        let solver = Solver::new(&d, &atoms, 4);
        let sol = solver
            .first(&mut |b| b.get(VarId(0)) != b.get(VarId(2)))
            .unwrap();
        assert_eq!(sol.retracts.len(), 2);
        assert_ne!(sol.retracts[0], sol.retracts[1]);
    }

    #[test]
    fn retract_atoms_take_distinct_instances() {
        // Only one tuple: <α>↑, <β>↑ has no solution even though both
        // patterns individually match the single instance.
        let mut d = Dataspace::new();
        d.assert_tuple(ProcId::ENV, tuple![5]);
        let atoms = vec![
            QueryAtom::retract(pattern![var 0]),
            QueryAtom::retract(pattern![var 1]),
        ];
        let solver = Solver::new(&d, &atoms, 2);
        assert!(solver.first(&mut |_| true).is_none());
    }

    #[test]
    fn read_atoms_may_share_an_instance() {
        let mut d = Dataspace::new();
        d.assert_tuple(ProcId::ENV, tuple![5]);
        let atoms = vec![
            QueryAtom::read(pattern![var 0]),
            QueryAtom::read(pattern![var 1]),
        ];
        let solver = Solver::new(&d, &atoms, 2);
        let sol = solver.first(&mut |_| true).unwrap();
        assert_eq!(sol.reads.len(), 2);
        assert_eq!(sol.reads[0], sol.reads[1]);
    }

    #[test]
    fn read_and_retract_may_share() {
        let mut d = Dataspace::new();
        d.assert_tuple(ProcId::ENV, tuple![5]);
        let atoms = vec![
            QueryAtom::read(pattern![var 0]),
            QueryAtom::retract(pattern![var 1]),
        ];
        let solver = Solver::new(&d, &atoms, 2);
        assert!(solver.first(&mut |_| true).is_some());
    }

    #[test]
    fn negation_blocks_solution() {
        let mut d = Dataspace::new();
        d.assert_tuple(ProcId::ENV, tuple![a("index"), 1]);
        // ¬<index, *> fails while an index tuple exists.
        let atoms = vec![QueryAtom::neg(pattern![a("index"), any])];
        let solver = Solver::new(&d, &atoms, 0);
        assert!(solver.first(&mut |_| true).is_none());
        // Retract it; now the negation holds (empty positive part yields
        // one empty solution).
        let id = d.find_all(&pattern![a("index"), any])[0];
        d.retract(id);
        let solver = Solver::new(&d, &atoms, 0);
        let sol = solver.first(&mut |_| true).unwrap();
        assert_eq!(sol.neg_checks.len(), 1);
    }

    #[test]
    fn negation_sees_current_bindings() {
        // ∃α: <val, α>, ¬<done, α> — only val 2 lacks a done marker.
        let mut d = Dataspace::new();
        d.assert_tuple(ProcId::ENV, tuple![a("val"), 1]);
        d.assert_tuple(ProcId::ENV, tuple![a("val"), 2]);
        d.assert_tuple(ProcId::ENV, tuple![a("done"), 1]);
        let atoms = vec![
            QueryAtom::read(pattern![a("val"), var 0]),
            QueryAtom::neg(pattern![a("done"), var 0]),
        ];
        let solver = Solver::new(&d, &atoms, 1);
        let sols = solver.all(&mut |_| true, SolveLimits::default());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].bindings[0], Some(Value::Int(2)));
    }

    #[test]
    fn empty_query_has_one_solution() {
        let d = Dataspace::new();
        let atoms: Vec<QueryAtom> = Vec::new();
        let solver = Solver::new(&d, &atoms, 0);
        let sols = solver.all(&mut |_| true, SolveLimits::default());
        assert_eq!(sols.len(), 1);
        assert!(sols[0].reads.is_empty());
    }

    #[test]
    fn test_only_query() {
        let d = Dataspace::new();
        let atoms: Vec<QueryAtom> = Vec::new();
        let solver = Solver::new(&d, &atoms, 0);
        assert!(solver.first(&mut |_| false).is_none());
        assert!(solver.first(&mut |_| true).is_some());
    }

    #[test]
    fn enumerate_ignores_test() {
        let d = setup_years();
        let atoms = vec![QueryAtom::read(pattern![a("year"), var 0])];
        let solver = Solver::new(&d, &atoms, 1);
        assert_eq!(solver.enumerate(SolveLimits::default()).len(), 3);
    }

    #[test]
    fn solution_to_bindings_roundtrip() {
        let d = setup_years();
        let atoms = vec![QueryAtom::read(pattern![a("year"), var 0])];
        let solver = Solver::new(&d, &atoms, 1);
        let sol = solver.first(&mut |_| true).unwrap();
        let b = sol.to_bindings();
        assert_eq!(b.get(VarId(0)), sol.bindings[0].as_ref());
    }

    #[test]
    fn resolve_pattern_substitutes_bound_vars() {
        let mut b = Bindings::new(2);
        b.bind(VarId(0), Value::Int(7));
        let p = pattern![var 0, var 1, any];
        let r = resolve_pattern(&p, &b);
        assert_eq!(r.fields()[0], Field::Const(Value::Int(7)));
        assert_eq!(r.fields()[1], Field::Var(VarId(1)));
        assert_eq!(r.fields()[2], Field::Any);
    }

    #[test]
    fn solver_records_match_metrics() {
        use sdl_metrics::Metrics;
        let (m, reg) = Metrics::registry();
        let mut d = setup_years();
        d.set_metrics(m);
        let atoms = vec![QueryAtom::read(pattern![a("year"), var 0])];
        let solver = Solver::new(&d, &atoms, 1);
        let sols = solver.all(&mut |_| true, SolveLimits::default());
        assert_eq!(sols.len(), 3);
        assert!(reg.counter(Counter::MatchCandidates) >= 3);
        assert!(reg.counter(Counter::MatchAttempts) >= 3);
        assert!(reg.counter(Counter::SolverBacktracks) >= 3);
    }

    #[test]
    fn works_on_window_source() {
        use crate::window::Window;
        let d = setup_years();
        let w: Window = d
            .iter()
            .map(|(id, t)| sdl_tuple::TupleInstance::new(id, t.clone()))
            .collect();
        let atoms = vec![QueryAtom::read(pattern![a("year"), var 0])];
        let solver = Solver::new(&w, &atoms, 1);
        assert_eq!(solver.enumerate(SolveLimits::default()).len(), 3);
    }
}
