//! `sdl-bench-load` — load generator for `sdl-server`.
//!
//! ```text
//! sdl-bench-load [--addr HOST:PORT] [--read-from HOST:PORT]
//!                [--clients N] [--conns N]
//!                [--pipeline N] [--ops N] [--relations K]
//!                [--self-host] [--loops N] [--json]
//! ```
//!
//! * `--addr A`      server to hammer (default `127.0.0.1:7401`)
//! * `--read-from A` route reads to a read-only follower at `A`:
//!   writes stay on `--addr` (the leader) and each client's `inp`
//!   becomes a non-destructive `rdp` against the follower. A read miss
//!   then means the follower hadn't applied that write yet, so the
//!   miss count is the replication-lag signal, not an error
//! * `--clients N`   simulated clients (default 1000; state is one
//!   `u32` per client, so `--clients 1000000` is fine)
//! * `--conns N`     TCP connections to multiplex them over (default 16)
//! * `--pipeline N`  in-flight requests per connection (default 64;
//!   `1` is the one-op-per-syscall ablation baseline)
//! * `--ops N`       operations per simulated client (default 4)
//! * `--relations K` disjoint-relation profile: divide clients into K
//!   contiguous blocks, block k on functor `r{k}` (default 1 = every
//!   client on the shared `mbox` functor). With `K >= --conns`, each
//!   connection's traffic stays on disjoint shards — the multi-loop
//!   scaling shape
//! * `--self-host`   start an in-process server on an ephemeral port
//!   and aim the load at it (ignores `--addr`)
//! * `--loops N`     event loops for the self-hosted server (default 1)
//! * `--json`        emit the report as a JSON object instead of text
//!
//! Each simulated client alternates `out <R, c, seq>` with
//! `inp <R, c, seq>`; the report gives ops/sec and p50/p99/max
//! request latency across all workers.

use std::process::ExitCode;

use sdl::metrics::Metrics;
use sdl::server::{run_load, serve, LoadConfig, ServerConfig};

struct Args {
    load: LoadConfig,
    self_host: bool,
    loops: usize,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sdl-bench-load [--addr HOST:PORT] [--read-from HOST:PORT] \
         [--clients N] [--conns N] \
         [--pipeline N] [--ops N] [--relations K] [--self-host] [--loops N] \
         [--json]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        load: LoadConfig::default(),
        self_host: false,
        loops: 1,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.load.addr = it.next().unwrap_or_else(|| usage()),
            "--read-from" => args.load.read_from = Some(it.next().unwrap_or_else(|| usage())),
            "--clients" => {
                args.load.sim_clients = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--conns" => {
                args.load.connections = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--pipeline" => {
                args.load.pipeline = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--ops" => {
                args.load.ops_per_client = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--relations" => {
                args.load.relations = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--self-host" => args.self_host = true,
            "--loops" => {
                args.loops = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--json" => args.json = true,
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let mut args = parse_args();

    let server = if args.self_host {
        let cfg = ServerConfig {
            loops: args.loops,
            ..ServerConfig::default()
        };
        match serve(cfg, Metrics::disabled()) {
            Ok(s) => {
                args.load.addr = s.addr().to_string();
                Some(s)
            }
            Err(e) => {
                eprintln!("sdl-bench-load: cannot self-host: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let report = match run_load(&args.load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sdl-bench-load: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        println!(
            "{{\"clients\": {}, \"connections\": {}, \"pipeline\": {}, \
             \"relations\": {}, \"loops\": {}, \
             \"ops\": {}, \"misses\": {}, \"elapsed_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"max_ns\": {}}}",
            args.load.sim_clients,
            args.load.connections,
            args.load.pipeline,
            args.load.relations,
            if args.self_host { args.loops } else { 0 },
            report.ops,
            report.misses,
            report.elapsed.as_secs_f64() * 1e3,
            report.ops_per_sec,
            report.p50_ns,
            report.p99_ns,
            report.max_ns,
        );
    } else {
        println!(
            "clients={} conns={} pipeline={} ops/client={} relations={}",
            args.load.sim_clients,
            args.load.connections,
            args.load.pipeline,
            args.load.ops_per_client,
            args.load.relations,
        );
        println!(
            "ops={} misses={} elapsed={:.1}ms throughput={:.0} ops/sec",
            report.ops,
            report.misses,
            report.elapsed.as_secs_f64() * 1e3,
            report.ops_per_sec,
        );
        println!(
            "latency p50={}µs p99={}µs max={}µs",
            report.p50_ns / 1000,
            report.p99_ns / 1000,
            report.max_ns / 1000,
        );
    }

    if let Some(s) = server {
        if let Err(e) = s.shutdown() {
            eprintln!("sdl-bench-load: server shutdown: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
