#!/usr/bin/env bash
# Record a benchmark snapshot.
#
# Runs the workspace benches (vendored harness: best-observed wall-clock
# ns/iter on stdout, no statistics) and writes BENCH_<date>.json in the
# repo root with one entry per benchmark target. If the day's file
# already exists, entries are merged: re-measured benches replace their
# old values, everything else is kept — so a filtered run (one bench
# target, a substring) updates the snapshot instead of truncating it.
# Extra arguments are passed through to `cargo bench`, e.g.:
#
#   scripts/bench_record.sh                       # all benches
#   scripts/bench_record.sh -- join               # substring filter
#   scripts/bench_record.sh --bench e10_net       # one target, merged
set -eu
cd "$(dirname "$0")/.."

date="$(date +%Y-%m-%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
old="$(mktemp)"
trap 'rm -f "$raw" "$old"' EXIT

[ -f "$out" ] && cp "$out" "$old"

cargo bench -p sdl-bench "$@" 2>&1 | tee "$raw"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
rustc_v="$(rustc --version 2>/dev/null || echo unknown)"

awk -v date="$date" -v commit="$commit" -v rustc_v="$rustc_v" -v oldfile="$old" '
  FILENAME == oldfile {
    # Prior snapshot for the same day: keep its note and entries
    # unless this run re-measures them. Entries may be one object per
    # line (as this script writes them) or pretty-printed across
    # several lines (the snapshot survived a JSON formatter), so the
    # three fields are collected independently and an entry is emitted
    # once its trailing "iters" field has been seen.
    if (match($0, /^[ \t]*"note":/)) {
      note = $0
      sub(/,$/, "", note)
    }
    if (match($0, /"bench": *"[^"]*"/)) {
      cur = substr($0, RSTART, RLENGTH)
      sub(/"bench": *"/, "", cur)
      sub(/"$/, "", cur)
    }
    if (match($0, /"ns_per_iter": *[-+0-9.eE]+/)) {
      cur_ns = substr($0, RSTART, RLENGTH)
      sub(/.*: */, "", cur_ns)
    }
    if (cur != "" && match($0, /"iters": *[0-9]+/)) {
      iters = substr($0, RSTART, RLENGTH)
      sub(/.*: */, "", iters)
      if (!(cur in idx)) {
        names[++n] = cur
        idx[cur] = n
      }
      entries[idx[cur]] = sprintf("    {\"bench\": \"%s\", \"ns_per_iter\": %s, \"iters\": %s}", cur, cur_ns, iters)
      cur = ""
    }
    next
  }
  / ns\/iter / {
    name = $1
    ns = $2
    iters = $4
    sub(/\(/, "", iters)
    if (!(name in idx)) {
      names[++n] = name
      idx[name] = n
    }
    entries[idx[name]] = sprintf("    {\"bench\": \"%s\", \"ns_per_iter\": %s, \"iters\": %s}", name, ns, iters)
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"rustc\": \"%s\",\n", rustc_v
    printf "  \"unit\": \"ns/iter (best observed)\",\n"
    if (note != "") printf "%s,\n", note
    printf "  \"benches\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "")
    printf "  ]\n}\n"
  }
' "$old" "$raw" > "$out"
echo "wrote $out ($(grep -c '"bench"' "$out") entries)"
