//! E10 — networked dataspace server under pipelined load.
//!
//! The headline experiment for the TCP front-end: simulated clients
//! multiplexed over a bounded connection pool hammer one server with
//! the out/inp mailbox workload, at 1k, 10k and 100k clients. Claims
//! measured here:
//!
//! * **Per-op cost is flat across client scale**: `ns_per_op` (inverse
//!   throughput) holds as simulated clients grow 100× — capacity is
//!   bounded by the event loop and engine, not by who is asking.
//! * **Pipelining is the perf model**: at 10k clients, pipelined
//!   batching (depth 64) must beat one-op-per-syscall (depth 1) by
//!   ≥ 2× on ops/sec (`ablation_10k_*`). Depth-1 pays a full
//!   syscall + engine pass per op; depth-64 amortises both.
//! * **Tail latency stays bounded**: p50/p99 request-to-response
//!   latency is reported per scale.
//!
//! The load scenarios are one-shot wall-clock measurements (a 100k
//! client run is seconds, not nanoseconds), printed in the harness's
//! `ns/iter` line format so `scripts/bench_record.sh` records them:
//! the value is **ns per completed op** (or ns of latency for the
//! `p50`/`p99` series) and `iters` is the op count. Micro round-trip
//! costs (`rtt_*`) use the normal harness loop.

use criterion::{criterion_group, criterion_main, Criterion};

use sdl::metrics::Metrics;
use sdl::server::{run_load, serve, Client, LoadConfig, Server, ServerConfig};
use sdl_tuple::{pattern, tuple, Value};

fn start_server() -> Server {
    serve(ServerConfig::default(), Metrics::disabled()).expect("bind ephemeral server")
}

/// The harness's first-free-arg substring filter, applied to the
/// custom-printed load scenarios too.
fn filtered_out(name: &str) -> bool {
    match std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        Some(f) => !name.contains(&f),
        None => false,
    }
}

/// Prints a measurement in the vendored harness's line format.
fn report(name: &str, value_ns: f64, iters: u64) {
    if !filtered_out(name) {
        println!("{name:<50} {value_ns:>12.1} ns/iter ({iters} iters)");
    }
}

fn load_scenario(server: &Server, name: &str, sim_clients: usize, pipeline: usize, ops: usize) {
    if filtered_out(&format!("{name}/ns_per_op")) && filtered_out(&format!("{name}/p50")) {
        return;
    }
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        sim_clients,
        connections: 64.min(sim_clients),
        pipeline,
        ops_per_client: ops,
        relations: 1,
        read_from: None,
    };
    let r = run_load(&cfg).expect("load run");
    assert_eq!(r.misses, 0, "{name}: program order broken");
    report(&format!("{name}/ns_per_op"), 1e9 / r.ops_per_sec, r.ops);
    report(&format!("{name}/p50"), r.p50_ns as f64, r.ops);
    report(&format!("{name}/p99"), r.p99_ns as f64, r.ops);
}

fn bench_rtt(c: &mut Criterion, server: &Server) {
    let mut group = c.benchmark_group("e10_net");
    group.sample_size(20);
    let mut client = Client::connect(server.addr()).expect("connect");

    group.bench_function("rtt_ping", |b| b.iter(|| client.ping().expect("ping")));
    group.bench_function("rtt_out_inp", |b| {
        b.iter(|| {
            client.out(tuple![Value::atom("rtt"), 1i64]).expect("out");
            client
                .try_take(pattern![Value::atom("rtt"), any])
                .expect("inp")
                .expect("tuple present")
        })
    });
    group.finish();
}

fn bench_load(server: &Server) {
    // Client scale sweep: same pool (64 conns) and depth (64), ops
    // sized so every scenario finishes in seconds.
    load_scenario(server, "e10_net/clients_1k", 1_000, 64, 20);
    load_scenario(server, "e10_net/clients_10k", 10_000, 64, 4);
    load_scenario(server, "e10_net/clients_100k", 100_000, 64, 2);

    // Ablation: pipelined batching vs one-op-per-syscall at 10k
    // clients — the ISSUE's ≥2× ops/sec claim.
    load_scenario(server, "e10_net/ablation_10k_pipelined", 10_000, 64, 4);
    load_scenario(server, "e10_net/ablation_10k_unpipelined", 10_000, 1, 4);
}

fn e10(c: &mut Criterion) {
    let server = start_server();
    bench_rtt(c, &server);
    bench_load(&server);
    server.shutdown().expect("shutdown");
}

criterion_group!(e10_group, e10);
criterion_main!(e10_group);
