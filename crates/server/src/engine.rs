//! The per-loop request engine: maps decoded wire requests onto the
//! shared [`ShardedDataspace`] through footprint locking.
//!
//! Each event loop owns one `Engine`. Connection state (the parked-op
//! table, the assert buffer, reply routing) is loop-local and
//! lock-free; the store itself is shared, and every op acquires exactly
//! the shard locks its footprint routes to — the same discipline
//! `core::parallel` uses — so ops over disjoint relations on different
//! loops evaluate and commit truly in parallel:
//!
//! * **Batched commits** — consecutive `out` requests buffer into one
//!   `apply_batch` under one write footprint, flushed before the first
//!   read-type op needs to observe them (per-connection program order).
//! * **Zero-polling parks** — blocking ops register claimable
//!   [`Waiter`] stubs in the shared per-shard wake routers
//!   ([`NetShared`]) under the commit-epoch park protocol, so a parked
//!   request costs nothing until a commit publishes one of its keys —
//!   no matter which loop commits it.
//! * **Cross-loop wakes** — a commit's wake scan claims waiters
//!   exactly once; wakes for this loop retry inline in [`Engine::finish`],
//!   wakes for other loops travel through their mailboxes and surface
//!   here via [`Engine::deliver_wakes`]. The engine never touches an
//!   fd: it accumulates a kick mask the event loop turns into wake-fd
//!   writes, keeping the whole protocol explorable.
//! * **Eager disconnect cleanup** — parked requests are indexed by
//!   connection; closing one removes its blocked entries immediately
//!   (stubs in the routers are claimed, so remote wake scans drop them
//!   lazily), and `sdl_blocked_queue_depth` returns to baseline.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use sdl_core::parallel::{pending_write_footprint, txn_read_footprint};
use sdl_core::program::{compile_txn, CompiledTxn};
use sdl_core::txn::{build_effects, evaluate_query, watch_set_on, PlanConfig};
use sdl_core::Builtins;
use sdl_dataspace::{
    Action, ShardSet, ShardedDataspace, SolveLimits, TupleSource, WatchKey, WatchSet,
};
use sdl_lang::parse_transaction;
use sdl_metrics::{Counter, Gauge, Hist, LoopCounter, Metrics};
use sdl_tuple::{Bindings, Pattern, ProcId, Tuple, TupleId, Value};

use crate::shared::{NetShared, Waiter, Wake};
use crate::wire::{Request, Response};

pub use crate::shared::ConnId;

/// A reply destined for `(conn, req_id)`.
pub type Reply = (ConnId, u64, Response);

// Client-owned tuples get ProcIds in a reserved high range so they can
// never collide with in-process society pids.
const CONN_PID_BASE: u64 = 1 << 62;

#[derive(Debug)]
enum ParkedOp {
    In(Pattern),
    Rd(Pattern),
    Txn {
        txn: Arc<CompiledTxn>,
        env: HashMap<String, Value>,
    },
}

struct ParkedLocal {
    op: ParkedOp,
    /// The claimable stub registered in the shared wake routers.
    waiter: Arc<Waiter>,
}

/// One op attempt's verdict.
enum Attempt {
    Done(Response),
    /// Query does not (currently) hold; park on these keys. For
    /// transactions the set was probed inside the read-lock scope, so
    /// the epoch re-check in [`NetShared::park`] validates it.
    Park(Vec<WatchKey>),
}

/// The per-loop request engine over the shared sharded store.
pub struct Engine {
    shared: Arc<NetShared>,
    loop_id: usize,
    builtins: Builtins,
    plan: PlanConfig,
    limits: SolveLimits,
    metrics: Metrics,
    // Buffered `out` asserts awaiting the next flush, plus their acks.
    pending: Vec<Action>,
    pending_acks: Vec<(ConnId, u64)>,
    parked: HashMap<(ConnId, u64), ParkedLocal>,
    by_conn: HashMap<ConnId, HashSet<u64>>,
    // Compiled-transaction cache keyed by source text.
    txn_cache: HashMap<String, Arc<CompiledTxn>>,
    // Local park counter; waiter seqs interleave it across loops.
    park_seq: u64,
    // Wakes claimed for this loop (by its own commits or delivered via
    // the mailbox), pending retry in finish().
    wake_queue: VecDeque<Wake>,
    // Loops whose mailboxes this engine's commits filled since the last
    // take_kicks(); the event loop turns bits into wake-fd kicks.
    kick_mask: u64,
}

impl Engine {
    /// Creates a standalone single-loop engine over a fresh sharded
    /// store (the embedded/test configuration).
    pub fn new(metrics: Metrics) -> Engine {
        Engine::over(Arc::new(NetShared::new(4, 1, metrics)), 0)
    }

    /// Creates the engine for event loop `loop_id` over shared state.
    pub fn over(shared: Arc<NetShared>, loop_id: usize) -> Engine {
        let metrics = shared.metrics.clone();
        Engine {
            shared,
            loop_id,
            builtins: Builtins::standard(),
            plan: PlanConfig::default(),
            limits: SolveLimits::default(),
            metrics,
            pending: Vec::new(),
            pending_acks: Vec::new(),
            parked: HashMap::new(),
            by_conn: HashMap::new(),
            txn_cache: HashMap::new(),
            park_seq: 0,
            wake_queue: VecDeque::new(),
            kick_mask: 0,
        }
    }

    /// The shared state this engine commits against.
    pub fn shared(&self) -> &Arc<NetShared> {
        &self.shared
    }

    /// Requests parked on blocking ops *on this loop*.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Live tuples in the (shared) store.
    pub fn store_len(&self) -> usize {
        self.shared.sds.len()
    }

    /// Unclaimed waiter stubs in the shared wake routers (leak check in
    /// tests).
    pub fn wake_index_len(&self) -> usize {
        self.shared.live_stubs()
    }

    /// Loops whose wake fds must be kicked for mailbox handoffs this
    /// engine produced since the last call (bitmask by loop id).
    pub fn take_kicks(&mut self) -> u64 {
        std::mem::take(&mut self.kick_mask)
    }

    /// Handles one decoded request. `out` buffers; read-type ops flush
    /// the buffer first so a pipelined `out … inp` sequence observes
    /// program order. Replies append to `replies` in completion order.
    ///
    /// On a follower (read-only) engine, mutating requests never reach
    /// the store: they answer `NotLeader` with the leader's address.
    /// `rd`/`rdp` serve (and park) normally — the replication apply
    /// thread's commits wake parked readers like any other commit.
    pub fn submit(&mut self, conn: ConnId, req_id: u64, req: Request, replies: &mut Vec<Reply>) {
        self.metrics.inc(op_counter(&req));
        self.metrics
            .add_loop(self.loop_id, LoopCounter::Requests, 1);
        if self.shared.redirect.is_some() && mutates(&req) {
            let leader = self.shared.redirect.clone().unwrap_or_default();
            self.metrics.inc(Counter::ReplNotLeaderRedirects);
            replies.push((conn, req_id, Response::NotLeader(leader)));
            return;
        }
        match req {
            Request::Ping => replies.push((conn, req_id, Response::Ok)),
            Request::Out(t) => {
                self.pending.push(Action::Assert(conn_pid(conn), t));
                self.pending_acks.push((conn, req_id));
            }
            Request::Inp(p) => {
                self.flush(replies);
                let resp = match self.take_match(&p) {
                    Some(t) => Response::Tuple(t),
                    None => Response::Failed,
                };
                replies.push((conn, req_id, resp));
            }
            Request::Rdp(p) => {
                self.flush(replies);
                let resp = match self.read_match(&p) {
                    Some(t) => Response::Tuple(t),
                    None => Response::Failed,
                };
                replies.push((conn, req_id, resp));
            }
            Request::In(p) => {
                self.flush(replies);
                self.run_blocking(conn, req_id, ParkedOp::In(p), true, replies);
            }
            Request::Rd(p) => {
                self.flush(replies);
                self.run_blocking(conn, req_id, ParkedOp::Rd(p), true, replies);
            }
            Request::Txn { source, env } => {
                self.flush(replies);
                let env: HashMap<String, Value> = env.into_iter().collect();
                match self.compile(&source) {
                    Err(msg) => replies.push((conn, req_id, Response::Error(msg))),
                    Ok(txn) => {
                        self.run_blocking(conn, req_id, ParkedOp::Txn { txn, env }, true, replies);
                    }
                }
            }
            Request::Cancel(target) => {
                if self.unpark(conn, target).is_some() {
                    replies.push((conn, target, Response::Cancelled));
                    replies.push((conn, req_id, Response::Ok));
                } else {
                    replies.push((conn, req_id, Response::Failed));
                }
            }
        }
    }

    /// Ends a batch: flushes buffered asserts and retries every wake
    /// claimed for this loop to a fixpoint (a woken transaction's
    /// effects may wake further parks, here or on other loops).
    pub fn finish(&mut self, replies: &mut Vec<Reply>) {
        self.flush(replies);
        while let Some(w) = self.wake_queue.pop_front() {
            // May have been cancelled/disconnected since the claim; the
            // local table is authoritative.
            let Some(op) = self.unpark(w.conn, w.req_id) else {
                continue;
            };
            self.metrics.inc(Counter::WakeupCommit);
            let progressed = self.run_blocking(w.conn, w.req_id, op, false, replies);
            self.metrics.inc(if progressed {
                Counter::WakeProgress
            } else {
                Counter::WakeSpurious
            });
        }
    }

    /// Feeds cross-loop wakes drained from this loop's mailbox and runs
    /// them (plus anything they cascade into) to completion.
    pub fn deliver_wakes(&mut self, wakes: Vec<Wake>, replies: &mut Vec<Reply>) {
        self.wake_queue.extend(wakes);
        self.finish(replies);
    }

    /// Drops every parked request belonging to `conn` (client went
    /// away); returns how many were cancelled.
    pub fn disconnect(&mut self, conn: ConnId) -> usize {
        let Some(reqs) = self.by_conn.remove(&conn) else {
            return 0;
        };
        let n = reqs.len();
        for req_id in reqs {
            if let Some(pl) = self.parked.remove(&(conn, req_id)) {
                pl.waiter.claim();
                self.shared.parked_sub();
                self.metrics.add_gauge(Gauge::BlockedQueueDepth, -1);
            }
        }
        n
    }

    // -- commit path ------------------------------------------------------

    /// Commits `actions` under the `fp` write footprint: apply, note the
    /// commit, drop locks, bump the epoch, then scan the wake routers.
    /// The single commit path for flushes, takes, and transactions.
    fn commit(&mut self, fp: ShardSet, actions: Vec<Action>) -> sdl_dataspace::BatchOutcome {
        let mut watch = WatchSet::new();
        let mut view = self.shared.sds.write_shards(fp);
        let (out, changed) = view.apply_batch(actions, &mut watch);
        self.shared
            .sds
            .note_commit(changed, self.shared.next_commit());
        let wal_commit = self.wal_append(&view, &out);
        drop(view);
        self.shared.bump_epoch();
        self.after_commit(&watch, changed);
        self.make_durable(wal_commit);
        out
    }

    /// Post-commit bookkeeping: affinity touch counts, the wake scan,
    /// and the kick mask for cross-loop handoffs.
    fn after_commit(&mut self, watch: &WatchSet, changed: ShardSet) {
        self.shared.touch_shards(self.loop_id, changed);
        let (local, kicks) = self.shared.wake(self.loop_id, watch, changed);
        self.wake_queue.extend(local);
        self.kick_mask |= kicks;
    }

    /// Appends the applied batch to the WAL *while the write view is
    /// still held*: any conflicting commit is ordered behind these
    /// locks, so the log's append order is a valid serialisation of the
    /// run (disjoint-footprint commits commute) — the same argument
    /// `core::parallel` makes. The fsync waits for [`Engine::make_durable`]
    /// after the locks drop.
    ///
    /// A WAL failure is fatal: the store has already applied the batch,
    /// so a leader that cannot log it must not stay up and acknowledge.
    fn wal_append<S: TupleSource + ?Sized>(
        &self,
        view: &S,
        out: &sdl_dataspace::BatchOutcome,
    ) -> Option<u64> {
        let wal = self.shared.wal.as_ref()?;
        let retracts: Vec<TupleId> = out.retracted.iter().map(|(id, _)| *id).collect();
        let asserts: Vec<(TupleId, Tuple)> = out
            .asserted
            .iter()
            .map(|&id| (id, view.tuple(id).expect("just asserted").clone()))
            .collect();
        match wal.append(&retracts, &asserts) {
            Ok(commit) => Some(commit),
            Err(e) => panic!("wal append failed; cannot acknowledge unlogged commits: {e}"),
        }
    }

    /// Group-commit fsync for `wal_commit` (after the write locks
    /// dropped, so concurrent committers share one fsync), then hands a
    /// due snapshot to the background [`sdl_durability::Snapshotter`] —
    /// the commit path never writes snapshot files inline.
    fn make_durable(&self, wal_commit: Option<u64>) {
        let Some(commit) = wal_commit else { return };
        let Some(wal) = self.shared.wal.as_ref() else {
            return;
        };
        if let Err(e) = wal.ensure_durable(commit) {
            panic!("wal fsync failed; cannot acknowledge unlogged commits: {e}");
        }
        if wal.snapshot_due() {
            let snapshotter = self.shared.snapshotter.lock();
            if let Some(snap) = snapshotter.as_ref() {
                // Only pay for the store copy when the writer thread
                // would accept it; a declined snapshot just means the
                // next due point offers again.
                if snap.idle() {
                    let view = self.shared.sds.read_shards(self.shared.sds.all_shards());
                    // Appends happen under shard write locks, so under a
                    // full-footprint read view the store is exactly the
                    // state after the highest appended commit.
                    let commit = wal.last_appended();
                    let (cursors, tuples) = view.snapshot_state();
                    drop(view);
                    snap.offer(commit, cursors, tuples);
                }
            }
        }
    }

    fn flush(&mut self, replies: &mut Vec<Reply>) {
        if self.pending.is_empty() {
            return;
        }
        self.metrics
            .observe(Hist::NetBatchSize, self.pending.len() as f64);
        let actions = std::mem::take(&mut self.pending);
        let mut fp = ShardSet::new();
        for a in &actions {
            match a {
                Action::Assert(_, t) => fp.insert(self.shared.sds.shard_of_tuple(t)),
                Action::Retract(id) => fp.insert(self.shared.sds.shard_of_id(*id)),
            }
        }
        self.commit(fp, actions);
        for (conn, req_id) in std::mem::take(&mut self.pending_acks) {
            replies.push((conn, req_id, Response::Ok));
        }
    }

    /// The write footprint of everything `p` could match.
    fn pattern_footprint(&self, p: &Pattern) -> ShardSet {
        match self.shared.sds.shard_of_pattern(p) {
            Some(s) => {
                let mut fp = ShardSet::new();
                fp.insert(s);
                fp
            }
            None => self.shared.sds.all_shards(),
        }
    }

    /// Probe-and-retract under one write footprint, so no concurrent
    /// loop can take the same instance.
    fn take_match(&mut self, p: &Pattern) -> Option<Tuple> {
        let fp = self.pattern_footprint(p);
        let mut watch = WatchSet::new();
        let mut view = self.shared.sds.write_shards(fp);
        let id = first_match_in(&view, p)?;
        let (out, changed) = view.apply_batch(vec![Action::Retract(id)], &mut watch);
        self.shared
            .sds
            .note_commit(changed, self.shared.next_commit());
        let wal_commit = self.wal_append(&view, &out);
        drop(view);
        self.shared.bump_epoch();
        self.after_commit(&watch, changed);
        self.make_durable(wal_commit);
        out.retracted.into_iter().next().map(|(_, t)| t)
    }

    fn read_match(&self, p: &Pattern) -> Option<Tuple> {
        let fp = self.pattern_footprint(p);
        let view = self.shared.sds.read_shards(fp);
        let id = first_match_in(&view, p)?;
        view.tuple(id).cloned()
    }

    // -- transactions -----------------------------------------------------

    fn compile(&mut self, source: &str) -> Result<Arc<CompiledTxn>, String> {
        if let Some(txn) = self.txn_cache.get(source) {
            return Ok(Arc::clone(txn));
        }
        let parsed = parse_transaction(source).map_err(|e| format!("parse error: {e}"))?;
        // No process signatures: a wire transaction cannot spawn.
        let txn =
            compile_txn(&parsed, &HashMap::new()).map_err(|e| format!("compile error: {e}"))?;
        let txn = Arc::new(txn);
        self.txn_cache.insert(source.to_owned(), Arc::clone(&txn));
        Ok(txn)
    }

    /// One optimistic attempt loop for a transaction: evaluate under the
    /// read footprint, build effects outside any lock, validate + apply
    /// under the write footprint, retry on conflict — the same shape as
    /// `core::parallel::attempt`.
    fn attempt_txn(
        &mut self,
        conn: ConnId,
        txn: &Arc<CompiledTxn>,
        env: &HashMap<String, Value>,
    ) -> Attempt {
        loop {
            let efp = txn_read_footprint(&self.shared.sds, txn, env, &self.builtins);
            let query = {
                let view = self.shared.sds.read_shards(efp);
                match evaluate_query(txn, &view, env, &self.builtins, self.limits, self.plan) {
                    Err(e) => return Attempt::Done(Response::Error(format!("eval error: {e}"))),
                    Ok(None) => {
                        if txn.kind == sdl_lang::ast::TxnKind::Delayed {
                            // Probe the narrowed subscription inside the
                            // read-lock scope: the emptiness evidence
                            // describes exactly the state the failed
                            // evaluation saw, and the park epoch
                            // re-check invalidates it if stale.
                            let watch = watch_set_on(
                                txn,
                                env,
                                &self.builtins,
                                self.plan.exact_wakes,
                                Some(&view),
                            );
                            return Attempt::Park(watch.iter().copied().collect());
                        }
                        return Attempt::Done(Response::Failed);
                    }
                    Ok(Some(q)) => q,
                }
            };
            // Effects (which may run host functions) outside any lock.
            let p = match build_effects(txn, &query, env, &self.builtins) {
                Err(e) => return Attempt::Done(Response::Error(format!("eval error: {e}"))),
                Ok(p) => p,
            };
            if !p.spawns.is_empty() {
                return Attempt::Done(Response::Error(
                    "spawn is not supported over the wire".to_owned(),
                ));
            }
            if p.abort {
                return Attempt::Done(Response::Failed);
            }
            let cfp = pending_write_footprint(&self.shared.sds, &p);
            let mut watch = WatchSet::new();
            let mut view = self.shared.sds.write_shards(cfp);
            if !p.validate(&view) {
                // A concurrent commit invalidated the evaluation's
                // evidence: classic optimistic conflict, retry.
                drop(view);
                continue;
            }
            let mut actions: Vec<Action> = Vec::with_capacity(p.retracts.len() + p.asserts.len());
            actions.extend(p.retracts.iter().map(|&id| Action::Retract(id)));
            actions.extend(
                p.asserts
                    .iter()
                    .map(|t| Action::Assert(conn_pid(conn), t.clone())),
            );
            let (out, changed) = view.apply_batch(actions, &mut watch);
            self.shared
                .sds
                .note_commit(changed, self.shared.next_commit());
            let wal_commit = self.wal_append(&view, &out);
            drop(view);
            self.shared.bump_epoch();
            self.after_commit(&watch, changed);
            self.make_durable(wal_commit);
            return Attempt::Done(Response::Ok);
        }
    }

    // -- park / wake ------------------------------------------------------

    fn attempt_op(&mut self, conn: ConnId, op: &ParkedOp) -> Attempt {
        match op {
            ParkedOp::In(p) => match self.take_match(p) {
                Some(t) => Attempt::Done(Response::Tuple(t)),
                None => Attempt::Park(exact_keys(p)),
            },
            ParkedOp::Rd(p) => match self.read_match(p) {
                Some(t) => Attempt::Done(Response::Tuple(t)),
                None => Attempt::Park(exact_keys(p)),
            },
            ParkedOp::Txn { txn, env } => {
                let (txn, env) = (Arc::clone(txn), env.clone());
                self.attempt_txn(conn, &txn, &env)
            }
        }
    }

    /// Runs a blocking-capable op to its verdict: a final reply, or a
    /// park under the commit-epoch protocol (retrying inline whenever
    /// the epoch re-check says a commit raced the registration).
    /// `notify_park` pushes the interim `Parked` response on a fresh
    /// park; wake retries pass `false` (the client already has one).
    /// Returns whether the op completed with a final response.
    fn run_blocking(
        &mut self,
        conn: ConnId,
        req_id: u64,
        op: ParkedOp,
        notify_park: bool,
        replies: &mut Vec<Reply>,
    ) -> bool {
        loop {
            // Epoch before the probe's locks: a commit landing after
            // this read either serialises behind them (the probe sees
            // its effects) or bumps the epoch (the park re-check
            // retries). Either way no wakeup is lost.
            let eval_epoch = self.shared.epoch();
            match self.attempt_op(conn, &op) {
                Attempt::Done(resp) => {
                    replies.push((conn, req_id, resp));
                    return true;
                }
                Attempt::Park(keys) => {
                    self.park_seq += 1;
                    let seq = self.park_seq * self.shared.n_loops() as u64 + self.loop_id as u64;
                    let waiter = Arc::new(Waiter::new(self.loop_id, conn, req_id, seq));
                    if self.shared.park(&waiter, &keys, eval_epoch) {
                        self.parked
                            .insert((conn, req_id), ParkedLocal { op, waiter });
                        self.by_conn.entry(conn).or_default().insert(req_id);
                        self.shared.parked_add();
                        self.metrics.inc(Counter::ProcessesBlocked);
                        self.metrics.add_gauge(Gauge::BlockedQueueDepth, 1);
                        if notify_park {
                            replies.push((conn, req_id, Response::Parked));
                        }
                        return false;
                    }
                    // Epoch moved and we claimed our own stub: retry.
                }
            }
        }
    }

    fn unpark(&mut self, conn: ConnId, req_id: u64) -> Option<ParkedOp> {
        let pl = self.parked.remove(&(conn, req_id))?;
        // Mark the router stubs stale; if a committer claimed first its
        // wake is in flight and will miss the (now empty) table — fine.
        pl.waiter.claim();
        if let Some(reqs) = self.by_conn.get_mut(&conn) {
            reqs.remove(&req_id);
            if reqs.is_empty() {
                self.by_conn.remove(&conn);
            }
        }
        self.shared.parked_sub();
        self.metrics.add_gauge(Gauge::BlockedQueueDepth, -1);
        Some(pl.op)
    }
}

/// First instance in `src` matching `p`, in id order.
fn first_match_in<S: TupleSource + ?Sized>(src: &S, p: &Pattern) -> Option<TupleId> {
    let n_vars = p.vars().map(|v| v.0 as usize + 1).max().unwrap_or(0);
    let mut b = Bindings::new(n_vars);
    src.candidate_ids(p).into_iter().find(|id| {
        let m = b.mark();
        let ok = src.tuple(*id).is_some_and(|t| p.matches(t, &mut b));
        b.undo_to(m);
        ok
    })
}

/// The exact-wake subscription for a plain `in`/`rd` pattern.
fn exact_keys(p: &Pattern) -> Vec<WatchKey> {
    let mut watch = WatchSet::new();
    watch.add_pattern_exact(p);
    watch.iter().copied().collect()
}

fn conn_pid(conn: ConnId) -> ProcId {
    ProcId(CONN_PID_BASE | conn)
}

/// Whether a request can change the store. Transactions count even when
/// their body happens to be read-only: classifying one would need
/// compilation, and a follower must never run anything that could
/// retract or assert.
fn mutates(req: &Request) -> bool {
    matches!(
        req,
        Request::Out(_) | Request::In(_) | Request::Inp(_) | Request::Txn { .. }
    )
}

fn op_counter(req: &Request) -> Counter {
    match req {
        Request::Out(_) => Counter::NetReqOut,
        Request::In(_) => Counter::NetReqIn,
        Request::Rd(_) => Counter::NetReqRd,
        Request::Inp(_) => Counter::NetReqInp,
        Request::Rdp(_) => Counter::NetReqRdp,
        Request::Txn { .. } => Counter::NetReqTxn,
        Request::Ping | Request::Cancel(_) => Counter::NetReqOther,
    }
}

// Unused import guard: ShardedDataspace appears in doc comments/paths.
#[allow(unused)]
fn _doc_type_anchor(_: &ShardedDataspace) {}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_tuple::{pattern, tuple};

    fn engine() -> Engine {
        Engine::new(Metrics::disabled())
    }

    fn drain(replies: &mut Vec<Reply>) -> Vec<Reply> {
        std::mem::take(replies)
    }

    #[test]
    fn out_batches_and_inp_flushes() {
        let mut e = engine();
        let mut r = Vec::new();
        e.submit(1, 1, Request::Out(tuple![Value::atom("m"), 1]), &mut r);
        e.submit(1, 2, Request::Out(tuple![Value::atom("m"), 2]), &mut r);
        assert!(r.is_empty(), "outs buffer until a flush point");
        e.submit(1, 3, Request::Inp(pattern![Value::atom("m"), 1]), &mut r);
        let got = drain(&mut r);
        // Out acks first (commit order), then the inp result.
        assert_eq!(got[0], (1, 1, Response::Ok));
        assert_eq!(got[1], (1, 2, Response::Ok));
        assert_eq!(got[2], (1, 3, Response::Tuple(tuple![Value::atom("m"), 1])));
        e.finish(&mut r);
        assert_eq!(e.store_len(), 1);
    }

    #[test]
    fn parked_in_served_by_later_out() {
        let mut e = engine();
        let mut r = Vec::new();
        e.submit(1, 1, Request::In(pattern![Value::atom("job"), any]), &mut r);
        e.finish(&mut r);
        assert_eq!(drain(&mut r), vec![(1, 1, Response::Parked)]);
        assert_eq!(e.parked_len(), 1);

        e.submit(2, 1, Request::Out(tuple![Value::atom("job"), 9]), &mut r);
        e.finish(&mut r);
        let got = drain(&mut r);
        assert!(got.contains(&(2, 1, Response::Ok)));
        assert!(got.contains(&(1, 1, Response::Tuple(tuple![Value::atom("job"), 9]))));
        assert_eq!(e.parked_len(), 0);
        assert_eq!(e.wake_index_len(), 0, "subscription cleaned on wake");
        assert_eq!(e.store_len(), 0, "in retracts");
    }

    #[test]
    fn one_tuple_wakes_exactly_one_of_two_waiters() {
        let mut e = engine();
        let mut r = Vec::new();
        e.submit(1, 1, Request::In(pattern![Value::atom("t"), any]), &mut r);
        e.submit(2, 1, Request::In(pattern![Value::atom("t"), any]), &mut r);
        e.finish(&mut r);
        drain(&mut r);
        e.submit(3, 1, Request::Out(tuple![Value::atom("t"), 0]), &mut r);
        e.finish(&mut r);
        let got = drain(&mut r);
        let tuples: Vec<_> = got
            .iter()
            .filter(|(_, _, resp)| matches!(resp, Response::Tuple(_)))
            .collect();
        assert_eq!(tuples.len(), 1, "{got:?}");
        // FIFO: the first parker wins.
        assert_eq!(tuples[0].0, 1);
        assert_eq!(e.parked_len(), 1, "second waiter stays parked");
    }

    #[test]
    fn disconnect_clears_parked_state() {
        let mut e = engine();
        let mut r = Vec::new();
        e.submit(5, 1, Request::In(pattern![Value::atom("x"), any]), &mut r);
        e.submit(5, 2, Request::Rd(pattern![Value::atom("y"), any]), &mut r);
        e.finish(&mut r);
        assert_eq!(e.parked_len(), 2);
        assert_eq!(e.disconnect(5), 2);
        assert_eq!(e.parked_len(), 0);
        assert_eq!(e.wake_index_len(), 0);
        // A later matching out wakes nothing and leaves the tuple.
        drain(&mut r);
        e.submit(6, 1, Request::Out(tuple![Value::atom("x"), 1]), &mut r);
        e.finish(&mut r);
        assert_eq!(e.store_len(), 1);
    }

    #[test]
    fn txn_roundtrip_and_delayed_park() {
        let mut e = engine();
        let mut r = Vec::new();
        // Immediate txn against an empty store fails cleanly.
        e.submit(
            1,
            1,
            Request::Txn {
                source: "exists a : <year, a>! : a > 87 -> <found, a>".to_owned(),
                env: vec![],
            },
            &mut r,
        );
        e.finish(&mut r);
        assert_eq!(drain(&mut r), vec![(1, 1, Response::Failed)]);

        // Delayed txn parks, then a matching out completes it.
        e.submit(
            1,
            2,
            Request::Txn {
                source: "exists a : <year, a>! : a > 87 => <found, a>".to_owned(),
                env: vec![],
            },
            &mut r,
        );
        e.finish(&mut r);
        assert_eq!(drain(&mut r), vec![(1, 2, Response::Parked)]);

        e.submit(2, 1, Request::Out(tuple![Value::atom("year"), 90]), &mut r);
        e.finish(&mut r);
        let got = drain(&mut r);
        assert!(got.contains(&(1, 2, Response::Ok)), "{got:?}");
        assert_eq!(e.parked_len(), 0);
        // year retracted, found asserted.
        e.submit(
            3,
            1,
            Request::Rdp(pattern![Value::atom("found"), 90]),
            &mut r,
        );
        e.finish(&mut r);
        assert!(matches!(r[0].2, Response::Tuple(_)));
    }

    #[test]
    fn cancel_releases_parked_op() {
        let mut e = engine();
        let mut r = Vec::new();
        e.submit(
            1,
            1,
            Request::In(pattern![Value::atom("never"), any]),
            &mut r,
        );
        e.finish(&mut r);
        drain(&mut r);
        e.submit(1, 2, Request::Cancel(1), &mut r);
        e.finish(&mut r);
        let got = drain(&mut r);
        assert!(got.contains(&(1, 1, Response::Cancelled)));
        assert!(got.contains(&(1, 2, Response::Ok)));
        assert_eq!(e.parked_len(), 0);
        assert_eq!(e.wake_index_len(), 0);
        // Cancelling a non-parked id fails cleanly.
        e.submit(1, 3, Request::Cancel(77), &mut r);
        assert_eq!(r[0], (1, 3, Response::Failed));
    }

    #[test]
    fn spawn_rejected_over_wire() {
        let mut e = engine();
        let mut r = Vec::new();
        e.submit(
            1,
            1,
            Request::Txn {
                source: "-> spawn W(1)".to_owned(),
                env: vec![],
            },
            &mut r,
        );
        e.finish(&mut r);
        assert!(
            matches!(&r[0].2, Response::Error(_)),
            "spawn must be rejected: {r:?}"
        );
    }

    #[test]
    fn two_engines_hand_wakes_across_loops() {
        // Two engines over one NetShared, as two event loops would own
        // them: a park on loop 1 is woken by a commit on loop 0 through
        // the mailbox + kick mask.
        let shared = Arc::new(NetShared::new(4, 2, Metrics::disabled()));
        let mut e0 = Engine::over(Arc::clone(&shared), 0);
        let mut e1 = Engine::over(Arc::clone(&shared), 1);
        let mut r = Vec::new();

        e1.submit(
            10,
            1,
            Request::In(pattern![Value::atom("job"), any]),
            &mut r,
        );
        e1.finish(&mut r);
        assert_eq!(drain(&mut r), vec![(10, 1, Response::Parked)]);

        e0.submit(20, 1, Request::Out(tuple![Value::atom("job"), 5]), &mut r);
        e0.finish(&mut r);
        assert_eq!(drain(&mut r), vec![(20, 1, Response::Ok)]);
        assert_eq!(e0.take_kicks(), 1 << 1, "loop 1 must be kicked");

        let wakes = shared.drain_mailbox(1);
        assert_eq!(wakes.len(), 1);
        e1.deliver_wakes(wakes, &mut r);
        assert_eq!(
            drain(&mut r),
            vec![(10, 1, Response::Tuple(tuple![Value::atom("job"), 5]))]
        );
        assert_eq!(e1.parked_len(), 0);
        assert_eq!(shared.parked_total(), 0);
        assert_eq!(shared.live_stubs(), 0);
    }

    #[test]
    fn disconnect_while_wake_in_flight_drops_the_wake() {
        let shared = Arc::new(NetShared::new(4, 2, Metrics::disabled()));
        let mut e0 = Engine::over(Arc::clone(&shared), 0);
        let mut e1 = Engine::over(Arc::clone(&shared), 1);
        let mut r = Vec::new();

        e1.submit(
            10,
            1,
            Request::In(pattern![Value::atom("job"), any]),
            &mut r,
        );
        e1.finish(&mut r);
        e0.submit(20, 1, Request::Out(tuple![Value::atom("job"), 5]), &mut r);
        e0.finish(&mut r);
        // The wake sits in loop 1's mailbox; the client disconnects
        // before delivery.
        e1.disconnect(10);
        assert_eq!(shared.parked_total(), 0);
        drain(&mut r);
        e1.deliver_wakes(shared.drain_mailbox(1), &mut r);
        assert_eq!(drain(&mut r), vec![], "stale wake is dropped");
        // The tuple stays for someone else.
        e1.submit(
            11,
            1,
            Request::Inp(pattern![Value::atom("job"), any]),
            &mut r,
        );
        assert!(matches!(r[0].2, Response::Tuple(_)));
    }
}
