//! The SDL value domain `V`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::atom::Atom;
use crate::tuple::{ProcId, TupleId};

/// A value from the SDL domain `V`.
///
/// The paper describes the domain as "e.g., atoms and integers"; this
/// implementation extends it with the other scalar kinds any practical SDL
/// program needs (booleans, floats, strings) plus two identifier kinds the
/// paper singles out: process references (results of process creation) and
/// tuple identifiers ("typically ignored by application programs but of
/// interest during debugging and testing").
///
/// `Value` has a *total* order (variant rank first, then payload) so that
/// values can key ordered containers and so query tests like `α > 87` are
/// deterministic across mixed-type dataspaces. Floats order by IEEE total
/// ordering; `NaN` compares greater than all other floats and equal to
/// itself.
///
/// # Examples
///
/// ```
/// use sdl_tuple::Value;
/// let v = Value::Int(87);
/// assert!(v < Value::Int(90));
/// assert_eq!(Value::atom("year"), Value::atom("year"));
/// ```
#[derive(Clone, Debug)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float. Equality and hashing use the bit pattern of the
    /// canonicalised value (`-0.0` normalises to `0.0`, all NaNs to one NaN).
    Float(f64),
    /// An interned symbol such as `year` or `nil`.
    Atom(Atom),
    /// An immutable string.
    Str(Arc<str>),
    /// A reference to a process in the society.
    Pid(ProcId),
    /// A tuple identifier (owner process + sequence number).
    Tid(TupleId),
}

impl Value {
    /// Convenience constructor for atom values.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdl_tuple::{Atom, Value};
    /// assert_eq!(Value::atom("nil"), Value::Atom(Atom::nil()));
    /// ```
    pub fn atom(name: &str) -> Value {
        Value::Atom(Atom::new(name))
    }

    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// The `nil` atom.
    pub fn nil() -> Value {
        Value::Atom(Atom::nil())
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, widening integers, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the atom payload, if this is an `Atom`.
    pub fn as_atom(&self) -> Option<Atom> {
        match self {
            Value::Atom(a) => Some(*a),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if this value is the `nil` atom.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdl_tuple::Value;
    /// assert!(Value::nil().is_nil());
    /// assert!(!Value::Int(0).is_nil());
    /// ```
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Atom(a) if *a == Atom::nil())
    }

    /// True if this value is numeric (`Int` or `Float`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Atom(_) => 3,
            Value::Str(_) => 4,
            Value::Pid(_) => 5,
            Value::Tid(_) => 6,
        }
    }

    fn canonical_float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                Value::canonical_float_bits(*a) == Value::canonical_float_bits(*b)
            }
            (Value::Atom(a), Value::Atom(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Pid(a), Value::Pid(b)) => a == b,
            (Value::Tid(a), Value::Tid(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Value::canonical_float_bits(*f).hash(state),
            Value::Atom(a) => a.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Pid(p) => p.hash(state),
            Value::Tid(t) => t.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            // Mixed numerics order by numeric value where comparable, with
            // ties broken by rank so the order stays total and antisymmetric.
            (Value::Int(a), Value::Float(b)) => (*a as f64)
                .total_cmp(b)
                .then(self.rank().cmp(&other.rank())),
            (Value::Float(a), Value::Int(b)) => a
                .total_cmp(&(*b as f64))
                .then(self.rank().cmp(&other.rank())),
            (Value::Atom(a), Value::Atom(b)) => a.as_str().cmp(b.as_str()),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Pid(a), Value::Pid(b)) => a.cmp(b),
            (Value::Tid(a), Value::Tid(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Atom(a) => write!(f, "{a}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pid(p) => write!(f, "{p}"),
            Value::Tid(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Value {
        Value::Atom(a)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Atom(Atom::new(s))
    }
}

impl From<ProcId> for Value {
    fn from(p: ProcId) -> Value {
        Value::Pid(p)
    }
}

impl From<TupleId> for Value {
    fn from(t: TupleId) -> Value {
        Value::Tid(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_by_payload() {
        assert_eq!(Value::Int(1), Value::Int(1));
        assert_ne!(Value::Int(1), Value::Int(2));
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::str("a"), Value::str("a"));
    }

    #[test]
    fn float_canonicalisation() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(-f64::NAN));
    }

    #[test]
    fn total_order_across_variants() {
        let mut vals = [
            Value::str("z"),
            Value::Int(3),
            Value::Bool(true),
            Value::atom("a"),
            Value::Float(2.5),
        ];
        vals.sort();
        // Bool < Int/Float (numeric) < Atom < Str.
        assert_eq!(vals[0], Value::Bool(true));
        assert_eq!(vals[3], Value::atom("a"));
        assert_eq!(vals[4], Value::str("z"));
    }

    #[test]
    fn mixed_numeric_order_is_by_value() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        // Equal numerics with different variants break ties by rank
        // (Int rank < Float rank), keeping the order antisymmetric.
        assert!(Value::Int(1) < Value::Float(1.0));
        assert!(Value::Float(1.0) > Value::Int(1));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Float(2.0).as_int(), None);
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::atom("x").as_atom(), Some(Atom::new("x")));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::nil().is_nil());
        assert!(Value::Int(1).is_numeric());
        assert!(!Value::atom("one").is_numeric());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::atom("year").to_string(), "year");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn hash_respects_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Float(0.0));
        assert!(s.contains(&Value::Float(-0.0)));
        s.insert(Value::Int(0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("a"), Value::atom("a"));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
    }
}
