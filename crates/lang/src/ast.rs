//! Abstract syntax of SDL programs.
//!
//! The AST is purely syntactic: names are strings, classified only later
//! (by `sdl-core`'s compiler) into quantified variables, process constants
//! (parameters and `let` bindings), or atom literals — mirroring the
//! paper's convention of Greek letters for quantified variables, lower case
//! for constants, and upper case for named constants.

use std::fmt;

use sdl_tuple::Value;

/// A complete SDL program: process definitions plus an optional initial
/// configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// The static set of process definitions.
    pub processes: Vec<ProcessDef>,
    /// Initial dataspace tuples and initial process society.
    pub init: InitBlock,
}

impl Program {
    /// Looks up a process definition by name.
    pub fn process(&self, name: &str) -> Option<&ProcessDef> {
        self.processes.iter().find(|p| p.name == name)
    }
}

/// The initial configuration: tuples asserted by the environment and the
/// initial process society.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InitBlock {
    /// Ground tuple expressions asserted before execution starts.
    pub tuples: Vec<Vec<Expr>>,
    /// Initial process instantiations.
    pub spawns: Vec<SpawnSpec>,
}

/// One process instantiation: `Sum1(2, 1)`.
#[derive(Clone, Debug, PartialEq)]
pub struct SpawnSpec {
    /// Process definition name.
    pub name: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

/// A parameterised process definition.
///
/// ```text
/// PROCESS type_name(parameters)
///   IMPORT import_definitions
///   EXPORT export_definitions
///   BEHAVIOR sequence_of_statements
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessDef {
    /// Type name, e.g. `Sum1`.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The process view (import/export rule sets).
    pub view: ViewDef,
    /// The behaviour: a sequence of statements.
    pub body: Vec<Stmt>,
}

/// A view definition: which tuples the process may see/retract (import)
/// and which it may add (export).
///
/// `None` means the view is unrestricted in that direction — the paper
/// omits the view "whenever it covers the entire dataspace".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ViewDef {
    /// Import rules; `None` imports everything.
    pub import: Option<Vec<ViewRule>>,
    /// Export rules; `None` exports everything.
    pub export: Option<Vec<ViewRule>>,
}

impl ViewDef {
    /// The unrestricted view.
    pub fn full() -> ViewDef {
        ViewDef::default()
    }

    /// True if both directions are unrestricted.
    pub fn is_full(&self) -> bool {
        self.import.is_none() && self.export.is_none()
    }
}

/// One import/export rule:
/// `forall vars : conditions => pattern`.
///
/// The rule denotes the set of tuples matching `pattern` for some
/// assignment of `vars` under which every condition holds **in the current
/// dataspace** — SDL "allows the view to depend upon the current
/// configuration of the dataspace" (used by the `Label` process of §3.3).
/// Unconditional rules (`conditions` empty) denote plain pattern sets.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewRule {
    /// Quantified variable names local to the rule.
    pub vars: Vec<String>,
    /// Conditions over the current dataspace.
    pub conditions: Vec<CondAtom>,
    /// The imported/exported tuple shape.
    pub pattern: PatternExpr,
}

impl ViewRule {
    /// An unconditional rule covering `pattern`.
    pub fn unconditional(pattern: PatternExpr) -> ViewRule {
        ViewRule {
            vars: Vec::new(),
            conditions: Vec::new(),
            pattern,
        }
    }
}

/// A condition inside a view rule.
#[derive(Clone, Debug, PartialEq)]
pub enum CondAtom {
    /// A tuple matching this pattern must exist in the dataspace.
    Tuple(PatternExpr),
    /// A built-in predicate must hold, e.g. `neighbor(p, r)`.
    Pred(String, Vec<Expr>),
}

/// A syntactic tuple pattern: a sequence of field expressions.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternExpr {
    /// The fields.
    pub fields: Vec<FieldExpr>,
}

impl PatternExpr {
    /// Builds a pattern from fields.
    pub fn new(fields: Vec<FieldExpr>) -> PatternExpr {
        PatternExpr { fields }
    }
}

/// One field of a syntactic pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldExpr {
    /// The wildcard `*`.
    Any,
    /// Any expression: a literal, a name (variable / constant / atom —
    /// resolved by the compiler), or arithmetic such as `k - 2^(j-1)`.
    Expr(Expr),
}

/// A statement of a process behaviour.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// A single transaction.
    Txn(Transaction),
    /// Selection: at most one guarded sequence commits; if none can, the
    /// construct acts as `skip` (unless a delayed/consensus guard forces
    /// blocking).
    Select(Vec<GuardedSeq>),
    /// Repetition: selection restarted after each committed branch;
    /// terminates when a pass selects nothing or on `exit`.
    Repeat(Vec<GuardedSeq>),
    /// Replication (`≡` / `par`): unbounded concurrent copies of each
    /// guarded sequence; terminates when all copies finish and no guard
    /// can fire.
    Replicate(Vec<GuardedSeq>),
}

/// A guarded sequence: a guarding transaction followed by statements.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardedSeq {
    /// The guarding transaction.
    pub guard: Transaction,
    /// The rest of the sequence, executed if the guard commits.
    pub rest: Vec<Stmt>,
}

/// Quantifier of a transaction query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Quant {
    /// `∃` — first solution commits.
    #[default]
    Exists,
    /// `∀` — the transaction succeeds iff every solution of the binding
    /// query satisfies the test; effects apply to every solution.
    Forall,
}

/// The operational mode of a transaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// `->` (`→`): evaluate once; succeed or fail.
    #[default]
    Immediate,
    /// `=>` (`⇒`): block until a successful evaluation is possible.
    Delayed,
    /// `@>` (`⇑`): participate in an n-way consensus among the issuer's
    /// consensus set; commits as part of a composite transaction.
    Consensus,
}

/// One atom of a transaction's binding query.
#[derive(Clone, Debug, PartialEq)]
pub enum TxnAtom {
    /// A tuple pattern; `retract` marks the paper's `↑` tag (our `!`).
    Tuple {
        /// The pattern.
        pattern: PatternExpr,
        /// Retract the matched instance on commit.
        retract: bool,
    },
    /// A negated pattern (`¬`): no visible tuple may match.
    Neg(PatternExpr),
    /// A built-in predicate in query position, e.g. `neighbor(ρ1, ρ2)`.
    /// Semantically a test conjunct; the compiler schedules it as early as
    /// its variables allow, so it prunes the join like the paper intends.
    Pred {
        /// Predicate name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// True if prefixed with `not`.
        negated: bool,
    },
}

/// An action in a transaction's action list.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Assert a tuple built from the expressions.
    Assert(Vec<Expr>),
    /// Bind a process-scope constant: `let N = α`.
    Let(String, Expr),
    /// Create a process: `Statistics(α)`.
    Spawn(String, Vec<Expr>),
    /// No effect.
    Skip,
    /// Terminate the innermost enclosing repetition/replication (or the
    /// behaviour, if none).
    Exit,
    /// Terminate the issuing process.
    Abort,
}

/// An SDL transaction.
///
/// ```text
/// quantifier variable_list : binding_query : test_query TAG action_list
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Transaction {
    /// Quantifier (`exists` by default).
    pub quant: Quant,
    /// Quantified variable names.
    pub vars: Vec<String>,
    /// The binding query.
    pub atoms: Vec<TxnAtom>,
    /// The test query (a boolean expression), if any.
    pub test: Option<Expr>,
    /// Immediate, delayed, or consensus.
    pub kind: TxnKind,
    /// Actions applied on success.
    pub actions: Vec<Action>,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division on ints)
    Div,
    /// `mod`
    Mod,
    /// `^` (exponentiation)
    Pow,
    /// `==`
    Eq,
    /// `!=` (`≠`)
    Ne,
    /// `<`
    Lt,
    /// `<=` (`≤`)
    Le,
    /// `>`
    Gt,
    /// `>=` (`≥`)
    Ge,
    /// `and` (`&`)
    And,
    /// `or` (`|`)
    Or,
}

impl BinOp {
    /// True for operators producing booleans from comparisons.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation (`not`, `~`).
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value (integer, float, boolean, string).
    Lit(Value),
    /// A name: quantified variable, process constant, or atom literal —
    /// classified by the compiler.
    Name(String),
    /// Unary application.
    Unary(UnOp, Box<Expr>),
    /// Binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function or predicate call, e.g. `neighbor(p, r)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Integer literal shorthand.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Value::Int(i))
    }

    /// Name shorthand.
    pub fn name(n: &str) -> Expr {
        Expr::Name(n.to_owned())
    }

    /// Applies a binary operator.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Collects every [`Expr::Name`] occurring in the expression into
    /// `out` (used by the compiler to schedule test conjuncts).
    pub fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Name(n) => out.push(n),
            Expr::Unary(_, e) => e.collect_names(out),
            Expr::Binary(_, l, r) => {
                l.collect_names(out);
                r.collect_names(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_names(out);
                }
            }
        }
    }

    /// Splits a conjunction (`a and b and c`) into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary(BinOp::And, l, r) => {
                let mut v = l.conjuncts();
                v.extend(r.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

impl fmt::Display for Quant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quant::Exists => f.write_str("exists"),
            Quant::Forall => f.write_str("forall"),
        }
    }
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnKind::Immediate => f.write_str("->"),
            TxnKind::Delayed => f.write_str("=>"),
            TxnKind::Consensus => f.write_str("@>"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "mod",
            BinOp::Pow => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Gt, Expr::name("a"), Expr::int(1)),
            Expr::bin(
                BinOp::And,
                Expr::name("p"),
                Expr::bin(BinOp::Lt, Expr::name("b"), Expr::int(2)),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
        // `or` is not split.
        let o = Expr::bin(BinOp::Or, Expr::name("a"), Expr::name("b"));
        assert_eq!(o.conjuncts().len(), 1);
    }

    #[test]
    fn collect_names_walks_everything() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Call("f".into(), vec![Expr::name("x"), Expr::int(1)]),
            Expr::Unary(UnOp::Neg, Box::new(Expr::name("y"))),
        );
        let mut names = Vec::new();
        e.collect_names(&mut names);
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            processes: vec![ProcessDef {
                name: "Sum1".into(),
                params: vec!["k".into(), "j".into()],
                view: ViewDef::full(),
                body: Vec::new(),
            }],
            init: InitBlock::default(),
        };
        assert!(p.process("Sum1").is_some());
        assert!(p.process("Nope").is_none());
        assert!(p.process("Sum1").unwrap().view.is_full());
    }

    #[test]
    fn display_of_operators_and_kinds() {
        assert_eq!(TxnKind::Immediate.to_string(), "->");
        assert_eq!(TxnKind::Delayed.to_string(), "=>");
        assert_eq!(TxnKind::Consensus.to_string(), "@>");
        assert_eq!(Quant::Forall.to_string(), "forall");
        assert_eq!(BinOp::Ne.to_string(), "!=");
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn defaults() {
        let t = Transaction::default();
        assert_eq!(t.quant, Quant::Exists);
        assert_eq!(t.kind, TxnKind::Immediate);
        assert!(t.vars.is_empty());
        assert!(ViewDef::default().is_full());
    }
}
