//! Load generator: many simulated clients multiplexed over a bounded
//! connection pool, with client-side pipelining.
//!
//! Each simulated client alternates `out <R, c, seq>` with
//! `inp <R, c, seq>` — the producer/consumer shape the Buravlev
//! tuple-space survey benchmarks across Linda implementations. A worker
//! thread owns one connection and a slice of the simulated clients,
//! keeping up to `pipeline` requests in flight; `pipeline = 1` is the
//! one-op-per-syscall ablation baseline.
//!
//! The relation `R` defaults to the single shared functor `mbox`;
//! [`LoadConfig::relations`] > 1 switches to the *disjoint-relation
//! profile* where client `c` works relation `r{c % K}`, each connection
//! sticks to one relation, and — because the sharded store routes by
//! functor — connections land on disjoint shard footprints. That is the
//! multi-loop scaling shape: with shard-affinity placement, loops end
//! up owning disjoint relations and commit without ever contending.
//!
//! State is sized for millions of simulated clients: one `u32` op
//! counter per client (sequence number and out/inp phase are both
//! derived from it), so 1M clients cost 4 MB across all workers, and
//! latencies go into a log-bucketed histogram (~3% resolution) with a
//! fixed 16 KiB footprint per worker, not a sample vector.

use std::io;
use std::time::{Duration, Instant};

use sdl_tuple::{pattern, tuple, Pattern, Tuple, Value};

use crate::client::Client;
use crate::wire::{Request, Response};

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Simulated clients (distinct mailbox ids).
    pub sim_clients: usize,
    /// TCP connections to multiplex them over.
    pub connections: usize,
    /// In-flight requests per connection (1 = unpipelined ablation).
    pub pipeline: usize,
    /// Operations per simulated client (alternating out/inp).
    pub ops_per_client: usize,
    /// Distinct relations (functors). `1` keeps every client on the
    /// shared `mbox` functor; `K > 1` divides clients into `K`
    /// contiguous blocks, block `k` working functor `r{k}`. Blocks
    /// align with the contiguous client slices connections own, so
    /// (for `K >=` connections) each connection's traffic stays on
    /// disjoint relations — and therefore disjoint shards.
    pub relations: usize,
    /// Route the read half of the workload to this address (a read-only
    /// replica): writes stay on [`LoadConfig::addr`], and each client's
    /// `inp` becomes a non-destructive `rdp` against the replica. A
    /// `rdp` miss then means the replica hadn't applied that client's
    /// `out` yet — the replication-lag signal — so misses are expected
    /// under load rather than a bug in this shape.
    pub read_from: Option<String>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:7401".to_owned(),
            sim_clients: 1000,
            connections: 16,
            pipeline: 64,
            ops_per_client: 4,
            relations: 1,
            read_from: None,
        }
    }
}

/// Aggregated results of a load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Operations completed (each received a final response).
    pub ops: u64,
    /// `inp` requests that found no tuple (should be 0 in this shape).
    pub misses: u64,
    /// Wall-clock time of the slowest worker.
    pub elapsed: Duration,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// Median op latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile op latency, nanoseconds.
    pub p99_ns: u64,
    /// Maximum op latency, nanoseconds.
    pub max_ns: u64,
}

/// Log-bucketed latency histogram: 5 mantissa bits ≈ 3% value
/// resolution, fixed footprint, O(1) record.
#[derive(Clone)]
pub struct LatHist {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

const SUB_BITS: usize = 5;
const SUB: usize = 1 << SUB_BITS;

fn bucket_of(ns: u64) -> usize {
    if ns < (2 * SUB) as u64 {
        return ns as usize; // exact for small values
    }
    let log = 63 - ns.leading_zeros() as usize;
    let shift = log - SUB_BITS;
    let mantissa = ((ns >> shift) as usize) & (SUB - 1);
    (shift + 1) * SUB + mantissa
}

fn value_of(bucket: usize) -> u64 {
    if bucket < 2 * SUB {
        return bucket as u64;
    }
    let shift = bucket / SUB - 1;
    let mantissa = (bucket % SUB) as u64;
    (SUB as u64 + mantissa) << shift
}

impl Default for LatHist {
    fn default() -> LatHist {
        LatHist::new()
    }
}

impl LatHist {
    /// Creates an empty histogram.
    pub fn new() -> LatHist {
        LatHist {
            buckets: vec![0; (64 - SUB_BITS + 1) * SUB],
            count: 0,
            max: 0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, ns: u64) {
        let b = bucket_of(ns).min(self.buckets.len() - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.max = self.max.max(ns);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]` (bucket lower bound; 0 when
    /// empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return value_of(i).min(self.max);
            }
        }
        self.max
    }
}

struct WorkerOut {
    hist: LatHist,
    misses: u64,
    elapsed: Duration,
}

/// The functor block client `cid` belongs to under `relations`
/// contiguous blocks over `sim_clients` ids.
fn relation_of(cid: usize, sim_clients: usize, relations: usize) -> usize {
    (cid * relations) / sim_clients.max(1)
}

fn worker(cfg: &LoadConfig, first_sim: usize, n_sim: usize) -> io::Result<WorkerOut> {
    let mut client = Client::connect(&cfg.addr)?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    // Read-routing: a second connection to the replica carries every
    // read; the write connection never sees them.
    let mut reader = match &cfg.read_from {
        Some(addr) => {
            let mut c = Client::connect(addr)?;
            c.set_timeout(Some(Duration::from_secs(30)))?;
            Some(c)
        }
        None => None,
    };
    let mut hist = LatHist::new();
    let mut misses = 0u64;

    let relations = cfg.relations.max(1);
    // Interned once per worker, cloned per op.
    let functors: Vec<Value> = if relations == 1 {
        vec![Value::atom("mbox")]
    } else {
        (0..relations)
            .map(|k| Value::atom(&format!("r{k}")))
            .collect()
    };

    let total = (n_sim * cfg.ops_per_client) as u64;
    // Per-sim-client state is one op counter; the sequence number and
    // the out/inp phase both derive from it. Keeps a million simulated
    // clients at 4 MB total instead of a per-client struct.
    let mut ops_done = vec![0u32; n_sim];
    let mut issued = 0u64;
    let mut done = 0u64;
    let mut sim_cursor = 0usize;
    // req_id → send time; req ids are assigned consecutively by the
    // client, so a Vec-backed ring would also work, but the map keeps
    // the code obvious and is far from the bottleneck. The replica
    // connection mints its own ids, so its in-flight set is separate.
    let mut pending: std::collections::HashMap<u64, (Instant, bool)> =
        std::collections::HashMap::new();
    let mut pending_r: std::collections::HashMap<u64, (Instant, bool)> =
        std::collections::HashMap::new();

    let t0 = Instant::now();
    while done < total {
        while issued < total && pending.len() + pending_r.len() < cfg.pipeline {
            let sim = sim_cursor;
            sim_cursor = (sim_cursor + 1) % n_sim;
            if u64::from(ops_done[sim]) >= cfg.ops_per_client as u64 {
                continue;
            }
            let cid = first_sim + sim;
            let functor =
                functors[relation_of(cid, cfg.sim_clients, relations) % functors.len()].clone();
            let seq = i64::from(ops_done[sim] / 2);
            let is_out = ops_done[sim].is_multiple_of(2);
            ops_done[sim] += 1;
            if is_out {
                let id = client.send(&Request::Out(mailbox_tuple(functor, cid as i64, seq)))?;
                pending.insert(id, (Instant::now(), false));
            } else {
                let p = mailbox_pattern(functor, cid as i64, seq);
                match reader.as_mut() {
                    Some(r) => {
                        let id = r.send(&Request::Rdp(p))?;
                        pending_r.insert(id, (Instant::now(), true));
                    }
                    None => {
                        let id = client.send(&Request::Inp(p))?;
                        pending.insert(id, (Instant::now(), true));
                    }
                }
            }
            issued += 1;
        }
        if !pending.is_empty() {
            let (id, resp) = client.recv()?;
            settle(&mut pending, id, resp, &mut hist, &mut misses, &mut done)?;
        }
        if let Some(r) = reader.as_mut() {
            if !pending_r.is_empty() {
                let (id, resp) = r.recv()?;
                settle(&mut pending_r, id, resp, &mut hist, &mut misses, &mut done)?;
            }
        }
    }
    Ok(WorkerOut {
        hist,
        misses,
        elapsed: t0.elapsed(),
    })
}

/// Accounts one reply against its lane's in-flight map. A `Failed` on a
/// read is a miss (on a replica lane, that means the read raced ahead
/// of replication); a `NotLeader` means the lanes are aimed wrong.
fn settle(
    pending: &mut std::collections::HashMap<u64, (Instant, bool)>,
    id: u64,
    resp: Response,
    hist: &mut LatHist,
    misses: &mut u64,
    done: &mut u64,
) -> io::Result<()> {
    if let Some((sent_at, is_read)) = pending.remove(&id) {
        hist.record(sent_at.elapsed().as_nanos() as u64);
        *done += 1;
        match resp {
            Response::Failed if is_read => *misses += 1,
            Response::NotLeader(leader) => {
                return Err(io::Error::other(format!(
                    "server is a read-only follower; writes go to {leader}"
                )));
            }
            Response::Error(msg) => return Err(io::Error::other(msg)),
            _ => {}
        }
    }
    Ok(())
}

fn mailbox_tuple(functor: Value, cid: i64, seq: i64) -> Tuple {
    tuple![functor, cid, seq]
}

fn mailbox_pattern(functor: Value, cid: i64, seq: i64) -> Pattern {
    pattern![functor, cid, seq]
}

/// Runs the configured load and aggregates worker results.
///
/// # Errors
///
/// Connection failure or any worker's I/O error.
pub fn run_load(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let conns = cfg.connections.clamp(1, cfg.sim_clients.max(1));
    let base = cfg.sim_clients / conns;
    let extra = cfg.sim_clients % conns;

    let mut handles = Vec::with_capacity(conns);
    let mut first = 0usize;
    for w in 0..conns {
        let n_sim = base + usize::from(w < extra);
        if n_sim == 0 {
            continue;
        }
        let cfg = cfg.clone();
        let first_sim = first;
        first += n_sim;
        handles.push(std::thread::spawn(move || worker(&cfg, first_sim, n_sim)));
    }

    let mut hist = LatHist::new();
    let mut misses = 0u64;
    let mut elapsed = Duration::ZERO;
    for h in handles {
        let out = h
            .join()
            .map_err(|_| io::Error::other("load worker panicked"))??;
        hist.merge(&out.hist);
        misses += out.misses;
        elapsed = elapsed.max(out.elapsed);
    }
    let ops = hist.count();
    let secs = elapsed.as_secs_f64().max(1e-9);
    Ok(LoadReport {
        ops,
        misses,
        elapsed,
        ops_per_sec: ops as f64 / secs,
        p50_ns: hist.quantile(0.5),
        p99_ns: hist.quantile(0.99),
        max_ns: hist.max(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_quantiles_are_sane() {
        let mut h = LatHist::new();
        for ns in 1..=1000u64 {
            h.record(ns * 1000); // 1µs .. 1ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        // ~3% bucket resolution around the true median of 500µs.
        assert!((400_000..=600_000).contains(&p50), "{p50}");
        let p99 = h.quantile(0.99);
        assert!((900_000..=1_000_000).contains(&p99), "{p99}");
        assert_eq!(h.max(), 1_000_000);
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn hist_merge_adds_counts() {
        let mut a = LatHist::new();
        let mut b = LatHist::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn bucket_value_roundtrip_within_resolution() {
        for exp in 0..60u32 {
            let v = 1u64 << exp;
            for off in [0u64, 1, 37] {
                let ns = v.saturating_add(off);
                let back = value_of(bucket_of(ns));
                assert!(back <= ns && ns - back <= ns / 16, "ns={ns} back={back}");
            }
        }
    }
}
