//! §3.1 — the three array-summation programs, compared.
//!
//! `Sum1` (synchronous, consensus barriers), `Sum2` (asynchronous,
//! phase-tagged), and `Sum3` (the replication one-liner) all add the same
//! array; the interesting difference is *structure*: barriers, commits,
//! and logical parallel rounds.
//!
//! ```sh
//! cargo run --release --example array_summation
//! ```

use sdl::workloads::{final_sum, random_array, sum1_runtime, sum2_runtime, sum3_runtime};

fn main() {
    let a = 8u32; // N = 256
    let n = 2usize.pow(a);
    let values = random_array(n, 2024);
    let expected: i64 = values.iter().sum();
    println!("summing N = {n} values; sequential fold says {expected}\n");
    println!(
        "{:<6} {:>10} {:>9} {:>9} {:>11} {:>8} {:>7}",
        "prog", "sum", "commits", "attempts", "consensus", "procs", "rounds"
    );

    // Serial reference runs.
    for (name, rt) in [
        ("Sum1", &mut sum1_runtime(&values, 1)),
        ("Sum2", &mut sum2_runtime(&values, 1)),
        ("Sum3", &mut sum3_runtime(&values, 1)),
    ] {
        let report = rt.run().expect("run succeeds");
        assert!(report.outcome.is_completed());
        println!(
            "{:<6} {:>10} {:>9} {:>9} {:>11} {:>8} {:>7}",
            name,
            final_sum(rt),
            report.commits,
            report.attempts,
            report.consensus_rounds,
            report.processes_created,
            "-"
        );
    }

    // Parallel-rounds runs: logical parallel time.
    println!("\nwith the maximal-parallel-rounds scheduler (logical time):");
    println!(
        "{:<6} {:>10} {:>9} {:>11} {:>7}  (log2 N = 8)",
        "prog", "sum", "commits", "consensus", "rounds"
    );
    for (name, rt) in [
        ("Sum1", &mut sum1_runtime(&values, 1)),
        ("Sum2", &mut sum2_runtime(&values, 1)),
        ("Sum3", &mut sum3_runtime(&values, 1)),
    ] {
        let report = rt.run_rounds().expect("run succeeds");
        assert!(report.outcome.is_completed());
        assert_eq!(final_sum(rt), expected);
        println!(
            "{:<6} {:>10} {:>9} {:>11} {:>7}",
            name,
            final_sum(rt),
            report.commits,
            report.consensus_rounds,
            report.rounds,
        );
    }

    println!(
        "\nAll three perform N-1 = {} additions; Sum1 pays {} consensus \
         barriers for its synchrony, Sum3 needs no programmer-supplied \
         control at all — \"it depends upon the availability of computing \
         resources on the particular machine\".",
        n - 1,
        a
    );
}
