//! `sdl-server` — serve a shared dataspace over TCP (`SDLNET01`).
//!
//! ```text
//! sdl-server [--addr HOST:PORT] [--metrics-addr HOST:PORT]
//!            [--loops N] [--shards N] [--pin-cores]
//!            [--placement affinity|rr]
//!            [--max-parked N] [--max-frame BYTES] [--write-buf BYTES]
//!            [--read-chunk BYTES] [--poll-timeout-ms N]
//!            [--wal-dir DIR] [--fsync always|interval[:MS]|never]
//!            [--snapshot-every N] [--wal-retain N]
//!            [--repl-addr HOST:PORT] [--advertise HOST:PORT]
//!            [--follow HOST:PORT]
//! ```
//!
//! * `--addr A`            bind address for the dataspace protocol
//!   (default `127.0.0.1:7401`; port `0` picks an ephemeral port,
//!   printed to stderr)
//! * `--metrics-addr A`    also serve Prometheus metrics over HTTP at
//!   `A` — the same `/metrics` endpoint `sdl-run` uses
//! * `--loops N`           event-loop worker threads over the shared
//!   sharded store (default 1; clamped to 64)
//! * `--shards N`          store shards (default 8)
//! * `--pin-cores`         pin loop `i` to core `i % cores` (Linux)
//! * `--placement P`       new-connection placement: `affinity` routes
//!   a connection to the loop already touching the shards its first
//!   request hits; `rr` is plain least-connections round-robin
//!   (default `affinity`)
//! * `--max-parked N`      parked-request high watermark (across all
//!   loops) before the server stops reading new requests
//!   (default 100000)
//! * `--max-frame BYTES`   per-frame payload cap (default 1 MiB)
//! * `--write-buf BYTES`   per-connection reply-buffer cap before that
//!   connection's reads pause (default 4 MiB)
//! * `--read-chunk BYTES`  bytes read per connection per loop pass
//!   (default 256 KiB)
//! * `--poll-timeout-ms N` poll timeout between passes (default 25)
//! * `--wal-dir DIR`       log every commit to a write-ahead log in
//!   `DIR` (created if missing); existing history is recovered and the
//!   store seeded from it. Without this flag, state is in-memory
//! * `--fsync P`           WAL fsync policy: `always`, `interval[:MS]`
//!   (default, 100 ms), or `never`
//! * `--snapshot-every N`  snapshot (and prune the log) every N commits
//! * `--wal-retain N`      keep at least the newest N commits through
//!   pruning, so a briefly-detached follower resumes from the log
//! * `--repl-addr A`       leader: also serve the `SDLREPL1`
//!   replication protocol at `A`, shipping the WAL to followers
//!   (requires `--wal-dir`; port `0` picks an ephemeral port)
//! * `--advertise A`       client address handed to followers for
//!   `NotLeader` redirects (default: the bound `--addr`)
//! * `--follow A`          follower: bootstrap from — and stay attached
//!   to — the leader's replication listener at `A`, serving reads only;
//!   writes are answered with a `NotLeader` redirect to the leader
//!
//! The process runs until SIGINT/SIGTERM kills it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sdl::metrics::Metrics;
use sdl::server::{serve, Placement, ServerConfig};

struct Args {
    cfg: ServerConfig,
    metrics_addr: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sdl-server [--addr HOST:PORT] [--metrics-addr HOST:PORT] \
         [--loops N] [--shards N] [--pin-cores] [--placement affinity|rr] \
         [--max-parked N] [--max-frame BYTES] [--write-buf BYTES] \
         [--read-chunk BYTES] [--poll-timeout-ms N] \
         [--wal-dir DIR] [--fsync always|interval[:MS]|never] \
         [--snapshot-every N] [--wal-retain N] \
         [--repl-addr HOST:PORT] [--advertise HOST:PORT] [--follow HOST:PORT]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: ServerConfig {
            addr: "127.0.0.1:7401".to_owned(),
            ..ServerConfig::default()
        },
        metrics_addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.cfg.addr = it.next().unwrap_or_else(|| usage()),
            "--metrics-addr" => args.metrics_addr = Some(it.next().unwrap_or_else(|| usage())),
            "--loops" => {
                args.cfg.loops = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--shards" => {
                args.cfg.shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--pin-cores" => args.cfg.pin_cores = true,
            "--placement" => {
                args.cfg.placement = match it.next().as_deref() {
                    Some("affinity") => Placement::Affinity,
                    Some("rr") | Some("round-robin") => Placement::RoundRobin,
                    _ => usage(),
                }
            }
            "--max-parked" => {
                args.cfg.max_parked = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--max-frame" => {
                args.cfg.max_frame = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--write-buf" => {
                args.cfg.write_buf_limit = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--read-chunk" => {
                args.cfg.read_chunk_limit = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--poll-timeout-ms" => {
                args.cfg.poll_timeout_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--wal-dir" => args.cfg.wal_dir = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--fsync" => {
                args.cfg.fsync = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--snapshot-every" => {
                args.cfg.snapshot_every = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--wal-retain" => {
                args.cfg.wal_retain = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--repl-addr" => args.cfg.repl_addr = Some(it.next().unwrap_or_else(|| usage())),
            "--advertise" => args.cfg.advertise = Some(it.next().unwrap_or_else(|| usage())),
            "--follow" => args.cfg.follow = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    let (metrics, registry) = Metrics::registry();
    let metrics_server = match &args.metrics_addr {
        Some(addr) => match sdl::metrics_http::serve(addr, Arc::clone(&registry)) {
            Ok(s) => {
                eprintln!("sdl-server: metrics at http://{}/metrics", s.addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("sdl-server: cannot serve metrics on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let server = match serve(args.cfg, metrics) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sdl-server: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sdl-server: listening on {}", server.addr());
    if let Some(repl) = server.repl_addr() {
        eprintln!("sdl-server: shipping replication on {repl}");
    }

    // Serve until killed. The event loop owns all state; this thread
    // just keeps the process (and the metrics endpoint) alive.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
        let _ = &metrics_server;
    }
}
